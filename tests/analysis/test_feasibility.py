"""Tests for feasibility analysis (workload bounds, hull membership)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    ConstantArrivals,
    NetworkSpec,
    idealized_timing,
)
from repro.analysis.feasibility import (
    empirical_feasibility,
    infeasible_by_workload,
    one_packet_delivery_vector,
    priority_hull_contains,
    subset_workload_slack,
    workload_utilization,
)


def one_packet_spec(n, p, slots, rho):
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(n, 1),
        channel=BernoulliChannel.symmetric(n, p),
        timing=idealized_timing(slots),
        delivery_ratios=rho,
    )


class TestWorkloadBounds:
    def test_utilization_value(self):
        spec = one_packet_spec(2, 0.5, 10, 1.0)
        assert workload_utilization(spec) == pytest.approx(0.4)

    def test_overloaded_network_flagged(self):
        spec = one_packet_spec(4, 0.5, 4, 0.9)  # needs 7.2 of 4 attempts
        assert infeasible_by_workload(spec) == (0, 1, 2, 3)

    def test_feasible_network_not_flagged(self):
        spec = one_packet_spec(2, 0.9, 10, 0.9)
        assert infeasible_by_workload(spec) is None

    def test_subset_slack_sign(self):
        spec = one_packet_spec(3, 0.8, 10, 0.9)
        assert subset_workload_slack(spec, (0,), num_samples=500) > 0
        tight = one_packet_spec(1, 0.2, 2, 0.3)
        # Demand 0.3/0.2 = 1.5 attempts; capacity E[min(Geom, 2)] = 1.8.
        slack = subset_workload_slack(tight, (0,), num_samples=4000)
        assert slack == pytest.approx(1.8 - 1.5, abs=0.05)

    def test_subset_validation(self):
        spec = one_packet_spec(2, 0.5, 4, 0.5)
        with pytest.raises(ValueError):
            subset_workload_slack(spec, ())
        with pytest.raises(ValueError):
            subset_workload_slack(spec, (5,))

    def test_bursty_subset_can_certify_infeasibility(self):
        """A single link whose requirement exceeds what its own arrivals can
        absorb in the interval, even though total utilization looks fine."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals(rates=(1.0, 0.05)),
            channel=BernoulliChannel(success_probs=(0.3, 0.9)),
            timing=idealized_timing(3),
            delivery_ratios=(0.75, 0.5),
        )
        # Total utilization (0.75/0.3 + 0.025/0.9)/3 ~ 0.84 < 1 passes the
        # aggregate bound, but link 0 alone needs 2.5 expected attempts while
        # E[min(Geom(0.3), 3)] ~ 2.19: infeasible via subset {0}.
        assert spec.workload_bound_utilization() < 1.0
        assert infeasible_by_workload(spec, noise_margin=0.1) == (0,)


class TestOnePacketDeliveryVector:
    def test_perfect_channels(self):
        vector = one_packet_delivery_vector((0, 1, 2), [1.0, 1.0, 1.0], 2)
        np.testing.assert_allclose(vector, [1.0, 1.0, 0.0])

    def test_single_link_geometric(self):
        vector = one_packet_delivery_vector((0,), [0.3], 4)
        assert vector[0] == pytest.approx(1 - 0.7**4)

    def test_blocking_head(self):
        """Matches the hand computation from the Lemma-3 test."""
        p, q = 0.01, 0.99
        vector = one_packet_delivery_vector((0, 1), [p, 1.0], 3)
        assert vector[0] == pytest.approx(1 - q**3)
        assert vector[1] == pytest.approx(p + q * p)

    def test_total_mass_conserved_under_reordering(self):
        """With symmetric links, total expected deliveries are
        order-invariant."""
        ps = [0.6, 0.6, 0.6]
        a = one_packet_delivery_vector((0, 1, 2), ps, 5).sum()
        b = one_packet_delivery_vector((2, 0, 1), ps, 5).sum()
        assert a == pytest.approx(b)

    def test_monte_carlo_agreement(self):
        """The closed form matches a brute-force simulation."""
        rng = np.random.default_rng(0)
        ps = [0.5, 0.8]
        slots = 4
        counts = np.zeros(2)
        trials = 20000
        for _ in range(trials):
            t = slots
            for link in (0, 1):
                while t > 0:
                    t -= 1
                    if rng.random() < ps[link]:
                        counts[link] += 1
                        break
        np.testing.assert_allclose(
            one_packet_delivery_vector((0, 1), ps, slots),
            counts / trials,
            atol=0.01,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            one_packet_delivery_vector((0, 0), [0.5, 0.5], 2)
        with pytest.raises(ValueError):
            one_packet_delivery_vector((0,), [0.0], 2)


class TestPriorityHull:
    def test_symmetric_feasible_point(self):
        """Uniform mixing of the two orderings dominates the symmetric q."""
        ps = [0.8, 0.8]
        vector = one_packet_delivery_vector((0, 1), ps, 4)
        symmetric_q = [(vector[0] + vector[1]) / 2] * 2
        assert priority_hull_contains(symmetric_q, ps, 4)

    def test_vertex_is_contained(self):
        ps = [0.5, 0.9]
        vector = one_packet_delivery_vector((1, 0), ps, 3)
        assert priority_hull_contains(vector * 0.999, ps, 3)

    def test_outside_point_rejected(self):
        ps = [0.8, 0.8]
        assert not priority_hull_contains([0.99, 0.99], ps, 2)

    def test_dominance_allowed(self):
        """Points strictly below an achievable vector are feasible."""
        ps = [0.9, 0.9]
        assert priority_hull_contains([0.1, 0.1], ps, 4)

    def test_size_cap(self):
        with pytest.raises(ValueError):
            priority_hull_contains([0.1] * 8, [0.5] * 8, 4)


class TestEmpiricalFeasibility:
    def test_feasible_case(self):
        spec = one_packet_spec(3, 0.9, 8, 0.9)
        verdict = empirical_feasibility(spec, num_intervals=800, seed=0)
        assert verdict.fulfilled

    def test_infeasible_case(self):
        spec = one_packet_spec(4, 0.4, 4, 0.9)
        verdict = empirical_feasibility(spec, num_intervals=800, seed=0)
        assert not verdict.fulfilled
        assert verdict.total_deficiency > 0.1
