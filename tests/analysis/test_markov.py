"""Tests for the exact sigma-chain analysis (Eq. (9), Lemma 4, Prop. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.markov import (
    build_sigma_chain,
    detailed_balance_residual,
    mixing_time_upper_bound,
    spectral_gap,
    stationary_from_matrix,
)
from repro.analysis.stationary import stationary_distribution


class TestChainConstruction:
    def test_rows_are_stochastic(self):
        chain = build_sigma_chain((0.3, 0.6, 0.8))
        np.testing.assert_allclose(chain.matrix.sum(axis=1), 1.0)
        assert np.all(chain.matrix >= 0)

    def test_transition_formula(self):
        """Spot-check Eq. (9) on N = 2: one pair, C = 1 always."""
        mus = (0.3, 0.8)
        chain = build_sigma_chain(mus)
        s12 = chain.index((1, 2))
        s21 = chain.index((2, 1))
        # From (1,2): link 0 at priority 1 moves down w.p. (1 - mu_0),
        # link 1 at priority 2 moves up w.p. mu_1; N - 1 = 1.
        assert chain.matrix[s12, s21] == pytest.approx((1 - 0.3) * 0.8)
        assert chain.matrix[s21, s12] == pytest.approx((1 - 0.8) * 0.3)

    def test_off_adjacent_transitions_are_zero(self):
        chain = build_sigma_chain((0.4, 0.5, 0.6))
        s = chain.index((1, 2, 3))
        t = chain.index((3, 2, 1))  # exchanging priorities 1 and 3: not adjacent
        assert chain.matrix[s, t] == 0.0

    def test_handshake_model_scales_transitions(self):
        plain = build_sigma_chain((0.4, 0.6))
        damped = build_sigma_chain((0.4, 0.6), handshake=lambda sigma, c: 0.5)
        s, t = plain.index((1, 2)), plain.index((2, 1))
        assert damped.matrix[s, t] == pytest.approx(0.5 * plain.matrix[s, t])

    def test_validation(self):
        with pytest.raises(ValueError):
            build_sigma_chain((0.5,))
        with pytest.raises(ValueError):
            build_sigma_chain((0.5, 1.0))
        with pytest.raises(ValueError):
            build_sigma_chain((0.5,) * 8)  # exceeds exact-analysis cap
        with pytest.raises(ValueError):
            build_sigma_chain((0.4, 0.6), handshake=lambda s, c: 2.0)


class TestLemma4:
    @pytest.mark.parametrize("mus", [(0.5, 0.5), (0.2, 0.9, 0.6), (0.3, 0.4, 0.5, 0.6)])
    def test_irreducible_and_aperiodic(self, mus):
        chain = build_sigma_chain(mus)
        assert chain.is_irreducible()
        assert chain.is_aperiodic()

    def test_zero_handshake_breaks_irreducibility(self):
        """P{R_i + R_j >= 1} = 0 everywhere (condition C1 violated) freezes
        the chain."""
        chain = build_sigma_chain((0.5, 0.5), handshake=lambda s, c: 0.0)
        assert not chain.is_irreducible()


class TestProposition2:
    @pytest.mark.parametrize(
        "mus",
        [(0.3, 0.8), (0.5, 0.5, 0.5), (0.2, 0.9, 0.6), (0.15, 0.35, 0.55, 0.75)],
    )
    def test_stationary_matches_closed_form(self, mus):
        """pi solved from pi X = pi equals the product form of Eq. (10)."""
        chain = build_sigma_chain(mus)
        pi = chain.stationary()
        closed = stationary_distribution(mus)
        for state, index in zip(chain.states, range(len(chain.states))):
            assert pi[index] == pytest.approx(closed[state], abs=1e-10)

    @pytest.mark.parametrize("mus", [(0.3, 0.8), (0.2, 0.9, 0.6)])
    def test_detailed_balance(self, mus):
        """Time-reversibility: pi_s X_st == pi_t X_ts for every pair."""
        chain = build_sigma_chain(mus)
        pi = chain.stationary()
        assert detailed_balance_residual(chain, pi) < 1e-12

    def test_closed_form_invariant_to_handshake_probability(self):
        """Eq. (10) does not depend on P{R_i + R_j >= 1} as long as it is
        positive and ordering-independent given the shared prefix."""
        chain_a = build_sigma_chain((0.3, 0.7, 0.5))
        chain_b = build_sigma_chain(
            (0.3, 0.7, 0.5), handshake=lambda s, c: 0.25
        )
        np.testing.assert_allclose(
            chain_a.stationary(), chain_b.stationary(), atol=1e-12
        )

    def test_uniform_mus_give_uniform_distribution(self):
        chain = build_sigma_chain((0.5, 0.5, 0.5))
        np.testing.assert_allclose(chain.stationary(), 1.0 / 6.0, atol=1e-12)


class TestSpectralDiagnostics:
    def test_gap_positive_for_ergodic_chain(self):
        chain = build_sigma_chain((0.4, 0.6, 0.5))
        assert 0.0 < spectral_gap(chain.matrix) < 1.0

    def test_mixing_time_decreases_with_gap(self):
        slow = build_sigma_chain((0.9, 0.9, 0.9), handshake=lambda s, c: 0.05)
        fast = build_sigma_chain((0.5, 0.5, 0.5))
        assert mixing_time_upper_bound(fast) < mixing_time_upper_bound(slow)

    def test_mixing_time_epsilon_validated(self):
        chain = build_sigma_chain((0.4, 0.6))
        with pytest.raises(ValueError):
            mixing_time_upper_bound(chain, epsilon=0.0)


class TestStationaryFromMatrix:
    def test_simple_two_state(self):
        matrix = np.array([[0.9, 0.1], [0.3, 0.7]])
        pi = stationary_from_matrix(matrix)
        np.testing.assert_allclose(pi, [0.75, 0.25])

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            stationary_from_matrix(np.ones((2, 3)))
