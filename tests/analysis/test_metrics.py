"""Tests for standalone metric helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    deficiency_series,
    empirical_delivery_ratio,
    group_deficiency,
    jains_fairness_index,
    per_link_deficiency,
    total_deficiency,
)


class TestDeficiency:
    def test_definition_1(self):
        deliveries = np.array([[1, 0], [1, 0], [1, 2]])
        q = [0.5, 1.0]
        np.testing.assert_allclose(
            per_link_deficiency(deliveries, q), [0.0, 1.0 - 2 / 3]
        )
        assert total_deficiency(deliveries, q) == pytest.approx(1 / 3)

    def test_empty_trace(self):
        deliveries = np.zeros((0, 2))
        np.testing.assert_allclose(
            per_link_deficiency(deliveries, [0.3, 0.4]), [0.3, 0.4]
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            per_link_deficiency(np.zeros(3), [1.0])
        with pytest.raises(ValueError):
            per_link_deficiency(np.zeros((3, 2)), [1.0])

    def test_series_is_prefix_consistent(self):
        rng = np.random.default_rng(1)
        deliveries = rng.integers(0, 2, size=(30, 2))
        q = [0.6, 0.7]
        series = deficiency_series(deliveries, q)
        assert series.shape == (30,)
        for k in (1, 10, 30):
            assert series[k - 1] == pytest.approx(
                total_deficiency(deliveries[:k], q)
            )


class TestGroupDeficiency:
    def test_two_groups(self):
        deliveries = np.array([[1, 1, 0, 0]] * 4)
        q = [0.5, 0.5, 0.5, 0.5]
        groups = [0, 0, 1, 1]
        np.testing.assert_allclose(
            group_deficiency(deliveries, q, groups), [0.0, 1.0]
        )

    def test_group_shape_validated(self):
        with pytest.raises(ValueError):
            group_deficiency(np.zeros((2, 3)), [0.1] * 3, [0, 1])


class TestDeliveryRatio:
    def test_basic(self):
        deliveries = np.array([[1, 0], [1, 1]])
        arrivals = np.array([[2, 1], [1, 1]])
        np.testing.assert_allclose(
            empirical_delivery_ratio(deliveries, arrivals), [2 / 3, 0.5]
        )

    def test_zero_arrivals(self):
        ratios = empirical_delivery_ratio(np.zeros((3, 1)), np.zeros((3, 1)))
        assert ratios[0] == 0.0


class TestJainsIndex:
    def test_perfectly_fair(self):
        assert jains_fairness_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_fully_unfair(self):
        assert jains_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            x = rng.random(6)
            index = jains_fairness_index(x)
            assert 1 / 6 <= index <= 1.0 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            jains_fairness_index([])
        with pytest.raises(ValueError):
            jains_fairness_index([-1.0, 1.0])

    def test_all_zero(self):
        assert jains_fairness_index([0.0, 0.0]) == 1.0
