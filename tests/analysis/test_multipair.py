"""Tests for the multi-pair chain analysis (Remark 6 verification)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.markov import (
    build_sigma_chain,
    detailed_balance_residual,
    spectral_gap,
)
from repro.analysis.multipair import (
    build_multipair_chain,
    non_consecutive_candidate_sets,
)
from repro.analysis.stationary import stationary_distribution


class TestCandidateSets:
    def test_single_pair_enumeration(self):
        assert non_consecutive_candidate_sets(4, 1) == [(1,), (2,), (3,)]

    def test_two_pair_enumeration(self):
        assert non_consecutive_candidate_sets(5, 2) == [(1, 3), (1, 4), (2, 4)]

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            non_consecutive_candidate_sets(4, 3)

    def test_matches_sampler_support(self):
        """The exact enumeration equals the support of the protocol's
        rejection sampler."""
        from repro.core.dp_protocol import draw_candidate_indices

        rng = np.random.default_rng(0)
        sampled = {draw_candidate_indices(6, 2, rng) for _ in range(2000)}
        assert sampled == set(non_consecutive_candidate_sets(6, 2))


class TestMultipairChain:
    def test_rows_stochastic(self):
        chain = build_multipair_chain((0.3, 0.6, 0.8, 0.5), num_pairs=2)
        np.testing.assert_allclose(chain.matrix.sum(axis=1), 1.0)
        assert np.all(chain.matrix >= 0)

    def test_reduces_to_single_pair_chain(self):
        mus = (0.4, 0.7, 0.55)
        single = build_sigma_chain(mus)  # handshake = 1
        multi = build_multipair_chain(mus, num_pairs=1)
        np.testing.assert_allclose(multi.matrix, single.matrix, atol=1e-12)

    @pytest.mark.parametrize(
        "mus,num_pairs",
        [
            ((0.3, 0.6, 0.8, 0.5), 2),
            ((0.2, 0.5, 0.7, 0.9, 0.4), 2),
            ((0.35, 0.65, 0.45, 0.75, 0.55, 0.25), 3),
        ],
    )
    def test_remark_6_preserves_product_form(self, mus, num_pairs):
        """The Remark-6 chain keeps Proposition 2's stationary
        distribution — the claim the paper defers to its technical report."""
        chain = build_multipair_chain(mus, num_pairs=num_pairs)
        closed = stationary_distribution(mus)
        pi = np.array([closed[s] for s in chain.states])
        np.testing.assert_allclose(pi @ chain.matrix, pi, atol=1e-12)

    @pytest.mark.parametrize("num_pairs", [1, 2])
    def test_remark_6_preserves_reversibility(self, num_pairs):
        mus = (0.3, 0.6, 0.8, 0.5)
        chain = build_multipair_chain(mus, num_pairs=num_pairs)
        closed = stationary_distribution(mus)
        pi = np.array([closed[s] for s in chain.states])
        assert detailed_balance_residual(chain, pi) < 1e-12

    def test_more_pairs_mix_faster(self):
        """The motivation for Remark 6: a larger spectral gap."""
        mus = (0.3, 0.6, 0.8, 0.5, 0.45)
        single = build_multipair_chain(mus, num_pairs=1)
        double = build_multipair_chain(mus, num_pairs=2)
        assert spectral_gap(double.matrix) > spectral_gap(single.matrix)

    def test_ergodic_within_the_pair_bound(self):
        """P <= max_swap_pairs(N) keeps the chain irreducible."""
        chain = build_multipair_chain((0.3, 0.6, 0.8, 0.5, 0.45), num_pairs=2)
        assert chain.is_irreducible()
        assert chain.is_aperiodic()

    def test_reducible_beyond_the_pair_bound(self):
        """The finding behind max_swap_pairs: N = 4 with 2 pairs admits only
        the candidate set {1, 3}, so priorities 2 and 3 can never swap and
        the chain is reducible (the product form is still invariant, but no
        longer the unique stationary distribution)."""
        assert non_consecutive_candidate_sets(4, 2) == [(1, 3)]
        chain = build_multipair_chain((0.3, 0.6, 0.8, 0.5), num_pairs=2)
        assert not chain.is_irreducible()
        from repro.core.dp_protocol import max_swap_pairs

        assert max_swap_pairs(4) == 1  # the protocol refuses this config

    def test_max_swap_pairs_matches_coverage_exactly(self):
        """Exhaustive check of the irreducibility bound for N <= 12: P is
        admissible iff every candidate index is covered by some set."""
        from repro.core.dp_protocol import max_swap_pairs

        for n in range(2, 13):
            for p in range(1, n // 2 + 1):
                try:
                    sets = non_consecutive_candidate_sets(n, p)
                except ValueError:
                    covered = False
                else:
                    covered = set().union(*map(set, sets)) == set(
                        range(1, n)
                    )
                assert covered == (p <= max_swap_pairs(n)), (n, p)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_multipair_chain((0.5,), 1)
        with pytest.raises(ValueError):
            build_multipair_chain((0.5, 0.5), 0)
        with pytest.raises(ValueError):
            build_multipair_chain((0.5,) * 7, 1)


class TestEmpiricalAgreement:
    def test_simulated_multipair_occupancy_matches_product_form(self):
        """End-to-end: the simulated Remark-6 protocol realizes the same
        stationary distribution."""
        from repro import (
            BernoulliChannel,
            ConstantArrivals,
            DPProtocol,
            IntervalSimulator,
            NetworkSpec,
            PerLinkSwapBias,
            idealized_timing,
        )
        from repro.analysis.empirical_chain import (
            occupancy_distribution,
            total_variation_distance,
        )

        mus = (0.7, 0.5, 0.3, 0.6, 0.45)
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(5, 1),
            channel=BernoulliChannel.symmetric(5, 1.0),
            timing=idealized_timing(10),
            delivery_ratios=1.0,
        )
        sim = IntervalSimulator(
            spec,
            DPProtocol(bias=PerLinkSwapBias(mus), num_pairs=2),
            seed=23,
            record_priorities=True,
        )
        sim.run(60000)
        empirical = occupancy_distribution(sim.result.priorities)
        theory = stationary_distribution(mus)
        assert total_variation_distance(empirical, theory) < 0.04
