"""Tests for the finite-horizon optimum (Lemma 3 verification)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.analysis.optimal_value import (
    eldf_order,
    max_expected_weighted_deliveries,
    priority_order_value,
)


class TestBaseCases:
    def test_no_slots(self):
        assert max_expected_weighted_deliveries([1.0], [1], [0.5], 0) == 0.0

    def test_no_packets(self):
        assert max_expected_weighted_deliveries([1.0], [0], [0.5], 5) == 0.0

    def test_single_link_single_slot(self):
        value = max_expected_weighted_deliveries([2.0], [1], [0.7], 1)
        assert value == pytest.approx(2.0 * 0.7)

    def test_single_link_two_slots(self):
        """1 - (1-p)^2 chance to deliver the single packet."""
        value = max_expected_weighted_deliveries([1.0], [1], [0.6], 2)
        assert value == pytest.approx(1 - 0.4**2)

    def test_perfect_channel_counts_slots(self):
        value = max_expected_weighted_deliveries([1.0, 1.0], [2, 2], [1.0, 1.0], 3)
        assert value == pytest.approx(3.0)


class TestLemma3:
    @pytest.mark.parametrize(
        "weights,packets,ps,slots",
        [
            ((1.0, 2.0), (1, 1), (0.9, 0.4), 2),
            ((1.0, 1.5, 0.5), (1, 1, 1), (0.5, 0.7, 0.9), 3),
            ((3.0, 1.0), (2, 2), (0.4, 0.9), 4),
            ((1.0, 1.0, 1.0), (2, 1, 1), (0.3, 0.6, 0.9), 5),
            ((0.5, 2.5, 1.0), (1, 2, 1), (0.8, 0.5, 0.6), 4),
        ],
    )
    def test_eldf_ordering_achieves_the_optimum(self, weights, packets, ps, slots):
        """Lemma 3: serving in decreasing f(d+) p order maximizes
        E[sum w_n S_n] among ALL policies, not just priority ones."""
        optimum = max_expected_weighted_deliveries(weights, packets, ps, slots)
        order = eldf_order(weights, ps)
        achieved = priority_order_value(order, weights, packets, ps, slots)
        assert achieved == pytest.approx(optimum, rel=1e-9)

    @pytest.mark.parametrize(
        "weights,packets,ps,slots",
        [
            ((1.0, 2.0), (1, 1), (0.9, 0.4), 2),
            ((1.0, 1.5, 0.5), (1, 1, 1), (0.5, 0.7, 0.9), 3),
        ],
    )
    def test_no_ordering_beats_the_dp_optimum(self, weights, packets, ps, slots):
        optimum = max_expected_weighted_deliveries(weights, packets, ps, slots)
        for order in itertools.permutations(range(len(weights))):
            value = priority_order_value(order, weights, packets, ps, slots)
            assert value <= optimum + 1e-9

    def test_bad_ordering_is_strictly_suboptimal(self):
        """Scarce slots + a strongly better link: reversing the order loses
        value, so Lemma 3's equality is not vacuous."""
        weights, packets, ps, slots = (5.0, 0.5), (1, 1), (0.9, 0.9), 1
        good = priority_order_value((0, 1), weights, packets, ps, slots)
        bad = priority_order_value((1, 0), weights, packets, ps, slots)
        assert good > bad


class TestPriorityOrderValue:
    def test_skips_empty_head(self):
        value = priority_order_value((0, 1), (1.0, 1.0), (0, 1), (0.5, 0.5), 2)
        assert value == pytest.approx(1 - 0.5**2)

    def test_all_empty(self):
        assert priority_order_value((0, 1), (1.0, 1.0), (0, 0), (0.5, 0.5), 3) == 0.0

    def test_order_validated(self):
        with pytest.raises(ValueError):
            priority_order_value((0, 0), (1.0, 1.0), (1, 1), (0.5, 0.5), 2)

    def test_head_blocks_until_interval_end(self):
        """LDF semantics: an unlucky head link keeps retrying and blocks the
        tail.  Exact hand computation for p = (0.01, 1.0), 3 slots:

        * head succeeds at slot 1 (w.p. p) or slot 2 (w.p. qp): the perfect
          tail link also delivers -> 2 deliveries;
        * head succeeds at slot 3 (w.p. q^2 p): no slot left for the tail
          -> 1 delivery;
        * head fails all three attempts (w.p. q^3) -> 0 deliveries.
        """
        p, q = 0.01, 0.99
        value = priority_order_value((0, 1), (1.0, 1.0), (1, 1), (p, 1.0), 3)
        expected = 2 * (p + q * p) + q * q * p
        assert value == pytest.approx(expected, rel=1e-12)


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            max_expected_weighted_deliveries([1.0], [1, 1], [0.5], 2)

    def test_negative_inputs(self):
        with pytest.raises(ValueError):
            max_expected_weighted_deliveries([-1.0], [1], [0.5], 2)
        with pytest.raises(ValueError):
            max_expected_weighted_deliveries([1.0], [-1], [0.5], 2)
        with pytest.raises(ValueError):
            max_expected_weighted_deliveries([1.0], [1], [0.0], 2)
        with pytest.raises(ValueError):
            max_expected_weighted_deliveries([1.0], [1], [0.5], -1)
