"""Tests for the DP overhead model against simulation and the paper bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBDPPolicy, run_simulation
from repro.analysis.overhead import expected_dp_overhead
from repro.experiments.configs import video_symmetric_spec


@pytest.fixture(scope="module")
def video_spec():
    return video_symmetric_spec(0.5, delivery_ratio=0.9)


class TestModel:
    def test_within_paper_worst_case(self, video_spec):
        model = expected_dp_overhead(video_spec, num_samples=2000)
        assert model.mean_overhead_us <= model.worst_case_us
        # The paper's single-pair bound: (N + 1) slots + 2 empty packets.
        expected_worst = 21 * 9.0 + 2 * video_spec.timing.empty_airtime_us
        assert model.worst_case_us == pytest.approx(expected_worst)

    def test_idle_slots_bounded_by_max_backoff(self, video_spec):
        model = expected_dp_overhead(video_spec, num_samples=1500)
        assert 0 <= model.mean_idle_slots <= video_spec.num_links + 1

    def test_empty_packets_bounded_by_pair_size(self, video_spec):
        model = expected_dp_overhead(video_spec, num_samples=1500)
        assert 0 <= model.mean_empty_packets <= 2.0

    def test_matches_full_simulation(self, video_spec):
        """The protocol-randomness-only model predicts the simulated mean
        overhead within a modest relative margin (it ignores interval
        truncation, which only lowers the true value)."""
        model = expected_dp_overhead(video_spec, num_samples=4000)
        run = run_simulation(video_spec, DBDPPolicy(), 1500, seed=0)
        simulated = float(run.overhead_time_us.mean())
        assert simulated <= model.mean_overhead_us * 1.15 + 5.0
        assert simulated >= model.mean_overhead_us * 0.6 - 5.0

    def test_more_pairs_more_overhead(self, video_spec):
        single = expected_dp_overhead(video_spec, num_pairs=1, num_samples=1500)
        triple = expected_dp_overhead(video_spec, num_pairs=3, num_samples=1500)
        assert triple.mean_overhead_us > single.mean_overhead_us
        assert triple.worst_case_us > single.worst_case_us

    def test_denser_traffic_more_idle_slots(self):
        sparse = expected_dp_overhead(
            video_symmetric_spec(0.1), num_samples=1500
        )
        dense = expected_dp_overhead(
            video_symmetric_spec(0.9), num_samples=1500
        )
        # More active links push the largest transmitting backoff higher.
        assert dense.mean_idle_slots > sparse.mean_idle_slots
        # ... but fewer empty packets (candidates usually have traffic).
        assert dense.mean_empty_packets < sparse.mean_empty_packets

    def test_validation(self, video_spec):
        with pytest.raises(ValueError):
            expected_dp_overhead(video_spec, mu=0.0)
        with pytest.raises(ValueError):
            expected_dp_overhead(video_spec, num_samples=0)
