"""Tests for the achievable-region explorer (Definitions 3-5)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.analysis.feasibility import one_packet_delivery_vector
from repro.analysis.region import (
    feasibility_margin,
    is_feasible,
    is_strictly_feasible,
    region_vertices,
    support_point,
)

PS = (0.6, 0.8)
SLOTS = 4


class TestSupportPoint:
    def test_maximizes_over_all_orderings(self):
        """The Lemma-3 shortcut agrees with brute force for random w."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            w = rng.random(2) * 3
            best = max(
                float(
                    w @ one_packet_delivery_vector(order, PS, SLOTS)
                )
                for order in itertools.permutations(range(2))
            )
            point = support_point(w, PS, SLOTS)
            assert float(w @ point) == pytest.approx(best, rel=1e-12)

    def test_weight_direction_picks_the_right_link(self):
        favored = support_point([10.0, 0.1], PS, SLOTS)
        unfavored = support_point([0.1, 10.0], PS, SLOTS)
        assert favored[0] > unfavored[0]
        assert unfavored[1] > favored[1]

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            support_point([-1.0, 1.0], PS, SLOTS)


class TestRegion:
    def test_vertices_count(self):
        assert len(region_vertices(PS, SLOTS)) == 2
        assert len(region_vertices((0.5, 0.5, 0.5), SLOTS)) == 6

    def test_vertices_are_feasible(self):
        for _, vector in region_vertices(PS, SLOTS):
            assert is_feasible(vector * 0.999, PS, SLOTS)

    def test_size_cap(self):
        with pytest.raises(ValueError):
            region_vertices((0.5,) * 8, SLOTS)


class TestFeasibilityTaxonomy:
    def test_interior_point_strictly_feasible(self):
        q = [0.3, 0.3]
        assert is_feasible(q, PS, SLOTS)
        assert is_strictly_feasible(q, PS, SLOTS, alpha=0.05)

    def test_boundary_point_not_strictly_feasible(self):
        """A vertex is feasible but has (almost) no inflation margin."""
        _, vertex = region_vertices(PS, SLOTS)[0]
        assert is_feasible(vertex * 0.999, PS, SLOTS)
        assert not is_strictly_feasible(vertex * 0.999, PS, SLOTS, alpha=0.2)

    def test_zero_component_never_strictly_feasible(self):
        """Definition 3 requires q_n > 0 for strict feasibility."""
        assert not is_strictly_feasible([0.0, 0.2], PS, SLOTS)

    def test_outside_point(self):
        assert not is_feasible([0.99, 0.99], PS, SLOTS)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            is_strictly_feasible([0.1, 0.1], PS, SLOTS, alpha=0.0)


class TestMargin:
    def test_infeasible_returns_negative(self):
        assert feasibility_margin([0.99, 0.99], PS, SLOTS) == -1.0

    def test_margin_shrinks_toward_boundary(self):
        inner = feasibility_margin([0.2, 0.2], PS, SLOTS)
        outer = feasibility_margin([0.55, 0.55], PS, SLOTS)
        assert inner > outer >= 0.0

    def test_margin_consistent_with_strict_feasibility(self):
        q = [0.4, 0.4]
        margin = feasibility_margin(q, PS, SLOTS)
        assert is_strictly_feasible(q, PS, SLOTS, alpha=max(margin / 2, 1e-4))
        if margin < 3.9:
            assert not is_strictly_feasible(
                q, PS, SLOTS, alpha=margin + 0.05
            )
