"""Tests for the closed-form stationary distributions (Props. 2 and 3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import GlauberDebtBias, LinearInfluence, PaperLogInfluence
from repro.analysis.stationary import (
    dbdp_stationary,
    most_probable_ordering,
    ordering_probability,
    priority_weight_exponent,
    stationary_distribution,
)


class TestWeightExponent:
    def test_inside_range(self):
        assert priority_weight_exponent(1, 4) == 3
        assert priority_weight_exponent(4, 4) == 0

    def test_outside_range_is_zero(self):
        assert priority_weight_exponent(0, 4) == 0
        assert priority_weight_exponent(5, 4) == 0


class TestProposition2ClosedForm:
    def test_normalization(self):
        dist = stationary_distribution((0.3, 0.6, 0.8))
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(p > 0 for p in dist.values())

    def test_two_link_hand_computation(self):
        """N = 2: pi(sigma) proportional to (mu/(1-mu))^{g} per link."""
        mu0, mu1 = 0.3, 0.8
        dist = stationary_distribution((mu0, mu1))
        w_01 = (mu0 / (1 - mu0)) ** 1  # link 0 at priority 1
        w_10 = (mu1 / (1 - mu1)) ** 1  # link 1 at priority 1
        assert dist[(1, 2)] == pytest.approx(w_01 / (w_01 + w_10))
        assert dist[(2, 1)] == pytest.approx(w_10 / (w_01 + w_10))

    def test_high_mu_prefers_high_priority(self):
        dist = stationary_distribution((0.9, 0.1))
        assert dist[(1, 2)] > dist[(2, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            stationary_distribution(())
        with pytest.raises(ValueError):
            stationary_distribution((0.5, 1.0))


class TestProposition3:
    def test_matches_equation_15(self):
        """Direct evaluation of exp(sum g(sigma_n) f(d+) p_n)/Z."""
        debts = (2.0, 0.0, 5.0)
        ps = (0.7, 0.9, 0.5)
        influence = PaperLogInfluence()
        dist = dbdp_stationary(debts, ps, influence)
        energies = [influence(d) * p for d, p in zip(debts, ps)]

        def weight(sigma):
            return math.exp(
                sum((3 - s) * e for s, e in zip(sigma, energies))
            )

        z = sum(weight(s) for s in dist)
        for sigma, prob in dist.items():
            assert prob == pytest.approx(weight(sigma) / z, rel=1e-9)

    def test_consistent_with_generic_form_for_any_r(self):
        """Substituting Eq. (14) into Prop. 2 must give Eq. (15) for every
        R (the R factors cancel in normalization)."""
        debts = (1.0, 3.0, 0.5)
        ps = (0.6, 0.8, 0.9)
        influence = LinearInfluence()
        expected = dbdp_stationary(debts, ps, influence)
        for r in (1.0, 10.0, 250.0):
            bias = GlauberDebtBias(influence=influence, glauber_r=r)
            mus = tuple(
                bias.mu(link, debts[link], ps[link]) for link in range(3)
            )
            generic = stationary_distribution(mus)
            for sigma in expected:
                assert generic[sigma] == pytest.approx(
                    expected[sigma], rel=1e-6
                )

    def test_mode_is_eldf_ordering(self):
        """The most probable ordering under Eq. (15) sorts by f(d+) p —
        exactly Algorithm 1's priority rule."""
        debts = (4.0, 1.0, 9.0, 2.5)
        ps = (0.5, 0.9, 0.7, 0.6)
        influence = PaperLogInfluence()
        dist = dbdp_stationary(debts, ps, influence)
        mode = max(dist, key=dist.get)
        assert mode == most_probable_ordering(debts, ps, influence)

    def test_concentration_grows_with_debt_scale(self):
        """Larger debts concentrate the distribution on the ELDF ordering —
        the mechanism behind Proposition 4."""
        ps = (0.7, 0.7, 0.7)
        influence = LinearInfluence()

        def mode_mass(scale):
            debts = (3.0 * scale, 2.0 * scale, 1.0 * scale)
            return ordering_probability(
                most_probable_ordering(debts, ps, influence),
                debts,
                ps,
                influence,
            )

        assert mode_mass(10.0) > mode_mass(1.0) > mode_mass(0.1)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            dbdp_stationary((1.0,), (0.5, 0.6), LinearInfluence())
