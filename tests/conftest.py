"""Shared fixtures for the test-suite.

Small, fast network specs reused across modules.  Anything paper-scale
(20 links, 5000 intervals) lives in the integration tests with reduced
horizons.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    BurstyVideoArrivals,
    ConstantArrivals,
    NetworkSpec,
    idealized_timing,
    low_latency_timing,
    video_timing,
)


@pytest.fixture
def tiny_spec() -> NetworkSpec:
    """3 links, perfect channels, one packet each, idealized timing."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(3, 1),
        channel=BernoulliChannel.symmetric(3, 1.0),
        timing=idealized_timing(6),
        delivery_ratios=1.0,
    )


@pytest.fixture
def lossy_spec() -> NetworkSpec:
    """4 links, p = 0.7, Bernoulli(0.8) arrivals, idealized timing."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(4, 0.8),
        channel=BernoulliChannel.symmetric(4, 0.7),
        timing=idealized_timing(10),
        delivery_ratios=0.9,
    )


@pytest.fixture
def video_spec() -> NetworkSpec:
    """Small version of the paper's video scenario (6 links)."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=BurstyVideoArrivals.symmetric(6, 0.5),
        channel=BernoulliChannel.symmetric(6, 0.7),
        timing=video_timing(),
        delivery_ratios=0.9,
    )


@pytest.fixture
def control_spec() -> NetworkSpec:
    """Small version of the paper's low-latency scenario (5 links)."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(5, 0.7),
        channel=BernoulliChannel.symmetric(5, 0.7),
        timing=low_latency_timing(),
        delivery_ratios=0.95,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
