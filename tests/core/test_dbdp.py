"""Tests for DB-DP (Eq. (14) bias and the full algorithm)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    DBDPPolicy,
    GlauberDebtBias,
    LinearInfluence,
    NetworkSpec,
    PAPER_R,
    PaperLogInfluence,
    idealized_timing,
    run_simulation,
)


class TestGlauberDebtBias:
    def test_matches_equation_14(self):
        """mu = exp(f(d+) p) / (R + exp(f(d+) p)) exactly."""
        influence = PaperLogInfluence()
        bias = GlauberDebtBias(influence=influence, glauber_r=10.0)
        for debt, p in [(0.0, 0.7), (3.0, 0.5), (50.0, 1.0)]:
            energy = influence(debt) * p
            expected = math.exp(energy) / (10.0 + math.exp(energy))
            assert bias.mu(0, debt, p) == pytest.approx(expected, rel=1e-9)

    def test_monotone_in_debt(self):
        bias = GlauberDebtBias(influence=PaperLogInfluence())
        mus = [bias.mu(0, d, 0.7) for d in [0, 1, 5, 50, 500]]
        assert all(b > a for a, b in zip(mus, mus[1:]))

    def test_monotone_in_reliability(self):
        bias = GlauberDebtBias(influence=PaperLogInfluence())
        assert bias.mu(0, 2.0, 0.9) > bias.mu(0, 2.0, 0.3)

    def test_large_debt_stays_in_open_interval(self):
        """Numerical stability: even astronomical debts give mu < 1."""
        bias = GlauberDebtBias(influence=LinearInfluence(), glauber_r=10.0)
        mu = bias.mu(0, 1e9, 1.0)
        assert 0.0 < mu < 1.0

    def test_rejects_nonpositive_r(self):
        with pytest.raises(ValueError):
            GlauberDebtBias(influence=PaperLogInfluence(), glauber_r=0.0)

    def test_r_shifts_baseline(self):
        """Larger R lowers every mu (harder to claim priority)."""
        small = GlauberDebtBias(influence=PaperLogInfluence(), glauber_r=1.0)
        large = GlauberDebtBias(influence=PaperLogInfluence(), glauber_r=100.0)
        assert small.mu(0, 1.0, 0.7) > large.mu(0, 1.0, 0.7)


class TestDBDPPolicy:
    def test_paper_defaults(self):
        policy = DBDPPolicy()
        assert isinstance(policy.influence, PaperLogInfluence)
        assert policy.glauber_r == PAPER_R == 10.0
        assert policy.num_pairs == 1
        assert policy.name == "DB-DP"

    def test_fulfills_feasible_requirement(self, lossy_spec):
        result = run_simulation(lossy_spec, DBDPPolicy(), 3000, seed=0)
        assert result.total_deficiency() < 0.05

    def test_indebted_link_climbs(self):
        """A link with a large head-start debt must reach high priority."""
        n = 5
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(n, 0.9),
            channel=BernoulliChannel.symmetric(n, 0.8),
            timing=idealized_timing(4),
            delivery_ratios=0.8,
        )
        policy = DBDPPolicy()
        from repro.core.debt import DebtLedger
        from repro.sim.rng import RngBundle

        policy.bind(spec)
        rng = RngBundle(3)
        # Link 4 starts with a huge debt; everyone else none.
        debts = np.array([0.0, 0.0, 0.0, 0.0, 60.0])
        for k in range(400):
            arrivals = spec.arrivals.sample(rng.arrivals)
            policy.run_interval(k, arrivals, debts, rng)
        # With mu_4 ~ 1 the chain should have carried link 4 upward.
        assert policy.priorities[4] <= 2

    def test_unserved_links_gain_priority_over_time(self):
        """Debt feedback under condition (C1): the bottom links rise.

        Arrivals must leave spare attempts with non-zero probability (C1) or
        the bottom pairs can never complete the handshake — see
        test_c1_violation_freezes_bottom_priorities.
        """
        n = 6
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(n, 0.8),
            channel=BernoulliChannel.symmetric(n, 1.0),
            timing=idealized_timing(4),  # mean demand 4.8 > 4, but P(A<4)>0
            delivery_ratios=0.5,
        )
        result = run_simulation(spec, DBDPPolicy(), 4000, seed=1)
        throughput = result.timely_throughput()
        # Capacity 4 shared by 6 symmetric links; requirement 0.4 each.
        assert throughput.min() > 0.3
        assert result.total_deficiency() < 0.15

    def test_c1_violation_freezes_bottom_priorities(self):
        """Faithful protocol behaviour outside condition (C1).

        With deterministic arrivals saturating every interval, the up-mover
        of any bottom pair never gets a transmission opportunity, so
        P{R_i + R_j >= 1} = 0 there: the sigma-chain is NOT irreducible
        (Lemma 4's hypothesis fails) and the bottom links starve forever.
        """
        n = 6
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(n, 1.0),  # A_n(k) = 1 always
            channel=BernoulliChannel.symmetric(n, 1.0),
            timing=idealized_timing(3),  # demand 6 > 3 deterministically
            delivery_ratios=0.5,
        )
        result = run_simulation(spec, DBDPPolicy(), 1500, seed=1)
        throughput = result.timely_throughput()
        # The two lowest initial priorities can never be vacated.
        assert throughput[4] == 0.0
        assert throughput[5] == 0.0
        # Links in the reachable top region do share service.
        assert throughput[:4].min() > 0.3

    def test_custom_influence_and_r(self):
        policy = DBDPPolicy(influence=LinearInfluence(), glauber_r=2.0)
        assert isinstance(policy.bias, GlauberDebtBias)
        assert policy.bias.glauber_r == 2.0
