"""Tests for the DCF (binary exponential backoff) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    DCFPolicy,
    NetworkSpec,
    run_simulation,
    video_timing,
)
from repro.traffic.arrivals import BurstyVideoArrivals


def make_spec(n=8, alpha=0.7):
    return NetworkSpec.from_delivery_ratios(
        arrivals=BurstyVideoArrivals.symmetric(n, alpha),
        channel=BernoulliChannel.symmetric(n, 0.7),
        timing=video_timing(),
        delivery_ratios=0.9,
    )


class TestConfiguration:
    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            DCFPolicy(cw_min=0)
        with pytest.raises(ValueError):
            DCFPolicy(cw_min=32, cw_max=16)


class TestBehaviour:
    def test_deliveries_bounded_by_arrivals(self):
        result = run_simulation(make_spec(), DCFPolicy(), 200, seed=0)
        assert np.all(result.deliveries <= result.arrivals)

    def test_collisions_occur_at_scale(self):
        result = run_simulation(make_spec(n=12), DCFPolicy(), 200, seed=1)
        assert int(result.collisions.sum()) > 0

    def test_single_link_is_collision_free(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(1, 2),
            channel=BernoulliChannel.symmetric(1, 1.0),
            timing=video_timing(),
            delivery_ratios=1.0,
        )
        result = run_simulation(spec, DCFPolicy(), 100, seed=2)
        assert int(result.collisions.sum()) == 0

    def test_backoff_window_state_resets_per_bind(self):
        policy = DCFPolicy()
        spec = make_spec(n=4)
        policy.bind(spec)
        policy._cw[:] = 999
        policy.bind(spec)
        assert np.all(policy._cw == policy.cw_min)

    def test_debt_oblivious(self):
        """DCF ignores debts entirely: identical seeds, different debts,
        identical deliveries."""
        from repro.sim.rng import RngBundle

        spec = make_spec(n=4)
        outcomes = []
        for debts in (np.zeros(4), np.full(4, 50.0)):
            policy = DCFPolicy()
            policy.bind(spec)
            rng = RngBundle(7)
            outcome = policy.run_interval(
                0, np.array([2, 2, 2, 2]), debts, rng
            )
            outcomes.append(outcome.deliveries.copy())
        np.testing.assert_array_equal(outcomes[0], outcomes[1])

    def test_loses_capacity_versus_collision_free(self):
        """Bianchi's point (reference [24]): DCF's contention losses are
        significant at moderate size; the DP protocol loses nothing."""
        from repro import ConstantSwapBias, DPProtocol

        spec = make_spec(n=12, alpha=0.8)
        dcf = run_simulation(spec, DCFPolicy(), 300, seed=3)
        dp = run_simulation(
            spec, DPProtocol(bias=ConstantSwapBias(0.5)), 300, seed=3
        )
        assert dp.deliveries.sum() > dcf.deliveries.sum()
