"""Tests for the delivery-debt ledger (Eq. (1), Definition 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.debt import DebtLedger


class TestConstruction:
    def test_initial_state(self):
        ledger = DebtLedger([0.5, 1.0])
        assert ledger.num_links == 2
        assert ledger.interval == 0
        np.testing.assert_array_equal(ledger.debts, [0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DebtLedger([])

    def test_rejects_negative_requirement(self):
        with pytest.raises(ValueError):
            DebtLedger([0.5, -0.1])

    def test_requirements_copy_is_defensive(self):
        ledger = DebtLedger([0.5, 1.0])
        ledger.requirements[0] = 99.0
        assert ledger.requirements[0] == 0.5


class TestEvolution:
    def test_single_interval_update(self):
        """d(k+1) = d(k) - S(k) + q."""
        ledger = DebtLedger([0.9, 0.9])
        ledger.record_interval([1, 0])
        np.testing.assert_allclose(ledger.debts, [-0.1, 0.9])
        assert ledger.interval == 1

    def test_closed_form_identity(self):
        """d_n(k) == k q_n - sum_{j<k} S_n(j)."""
        rng = np.random.default_rng(0)
        q = [0.7, 1.3, 0.2]
        ledger = DebtLedger(q)
        deliveries = rng.integers(0, 3, size=(50, 3))
        for row in deliveries:
            ledger.record_interval(row)
        expected = 50 * np.asarray(q) - deliveries.sum(axis=0)
        np.testing.assert_allclose(ledger.debts, expected)

    def test_positive_debts_clip(self):
        ledger = DebtLedger([0.5, 0.5])
        ledger.record_interval([2, 0])
        assert ledger.debts[0] < 0
        np.testing.assert_allclose(ledger.positive_debts, [0.0, 0.5])

    def test_rejects_wrong_shape(self):
        ledger = DebtLedger([1.0, 1.0])
        with pytest.raises(ValueError):
            ledger.record_interval([1])

    def test_rejects_negative_deliveries(self):
        ledger = DebtLedger([1.0])
        with pytest.raises(ValueError):
            ledger.record_interval([-1])


class TestDeficiency:
    def test_deficiency_equals_positive_debt_over_k(self):
        """Definition 1's metric equals d^+(K)/K — the structural identity."""
        rng = np.random.default_rng(7)
        ledger = DebtLedger([0.8, 1.5])
        for _ in range(37):
            ledger.record_interval(rng.integers(0, 3, size=2))
        np.testing.assert_allclose(
            ledger.per_link_deficiency(),
            np.maximum(ledger.debts, 0.0) / ledger.interval,
        )

    def test_zero_intervals_deficiency_is_q(self):
        ledger = DebtLedger([0.4, 0.6])
        np.testing.assert_allclose(ledger.per_link_deficiency(), [0.4, 0.6])
        assert ledger.total_deficiency() == pytest.approx(1.0)

    def test_fulfilled_requirement_gives_zero_deficiency(self):
        ledger = DebtLedger([0.5])
        for _ in range(100):
            ledger.record_interval([1])
        assert ledger.total_deficiency() == 0.0

    def test_empirical_timely_throughput(self):
        ledger = DebtLedger([1.0, 1.0])
        ledger.record_interval([1, 2])
        ledger.record_interval([0, 2])
        np.testing.assert_allclose(
            ledger.empirical_timely_throughput(), [0.5, 2.0]
        )


class TestSnapshotAndReset:
    def test_snapshot_is_immutable_view(self):
        ledger = DebtLedger([1.0])
        ledger.record_interval([0])
        snap = ledger.snapshot()
        assert snap.interval == 1
        np.testing.assert_allclose(snap.debts, [1.0])
        np.testing.assert_allclose(snap.positive_debts, [1.0])
        # Mutating the snapshot arrays must not touch the ledger.
        snap.debts[0] = -5
        np.testing.assert_allclose(ledger.debts, [1.0])

    def test_reset(self):
        ledger = DebtLedger([1.0, 2.0])
        ledger.record_interval([1, 1])
        ledger.reset()
        assert ledger.interval == 0
        np.testing.assert_array_equal(ledger.debts, [0.0, 0.0])
        np.testing.assert_array_equal(ledger.delivered_totals, [0.0, 0.0])
