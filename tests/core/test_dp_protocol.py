"""Tests for the generic DP protocol (Algorithm 2)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    ConstantSwapBias,
    DPProtocol,
    IntervalSimulator,
    NetworkSpec,
    PerLinkSwapBias,
    RngBundle,
    idealized_timing,
    video_timing,
)
from repro.core.dp_protocol import compute_backoffs, draw_candidate_indices
from repro.core.permutations import is_priority_vector
from repro.traffic.arrivals import BurstyVideoArrivals


def make_spec(n=4, slots=8, p=1.0, count=1):
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(n, count),
        channel=BernoulliChannel.symmetric(n, p),
        timing=idealized_timing(slots),
        delivery_ratios=0.5,
    )


class TestSwapBiases:
    def test_constant_bias_bounds(self):
        with pytest.raises(ValueError):
            ConstantSwapBias(0.0)
        with pytest.raises(ValueError):
            ConstantSwapBias(1.0)
        assert ConstantSwapBias(0.5).mu(0, 0.0, 1.0) == 0.5

    def test_per_link_bias(self):
        bias = PerLinkSwapBias((0.2, 0.8))
        assert bias.mu(0, 0.0, 1.0) == 0.2
        assert bias.mu(1, 5.0, 0.5) == 0.8
        with pytest.raises(ValueError):
            PerLinkSwapBias((0.2, 1.0))


class TestCandidateDraw:
    def test_single_pair_range(self):
        rng = np.random.default_rng(0)
        draws = {draw_candidate_indices(5, 1, rng)[0] for _ in range(500)}
        assert draws == {1, 2, 3, 4}

    def test_single_pair_uniform(self):
        rng = np.random.default_rng(1)
        counts = np.zeros(5)
        for _ in range(8000):
            counts[draw_candidate_indices(5, 1, rng)[0]] += 1
        # Each of C in {1,..,4} should get ~2000.
        assert counts[1:].min() > 1700

    def test_multi_pair_non_consecutive(self):
        rng = np.random.default_rng(2)
        for _ in range(300):
            draw = draw_candidate_indices(8, 3, rng)
            assert len(draw) == 3
            assert all(b - a >= 2 for a, b in zip(draw, draw[1:]))
            assert all(1 <= c <= 7 for c in draw)

    def test_too_many_pairs_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            draw_candidate_indices(4, 3, rng)

    def test_single_link_network(self):
        rng = np.random.default_rng(4)
        assert draw_candidate_indices(1, 1, rng) == ()


class TestBackoffAssignment:
    def test_paper_example_2(self):
        """Fig. 2 / Example 2: sigma = [1,2,3,4], C = 2, down xi=-1, up
        xi=+1 gives beta_2 = 3, beta_3 = 2 (links 1 and 2, 0-based)."""
        sigma = (1, 2, 3, 4)
        xi = {1: -1, 2: 1}
        backoffs = compute_backoffs(sigma, (2,), xi)
        assert backoffs[1] == 3  # link 2 in the paper (priority 2 = C)
        assert backoffs[2] == 2  # link 3 in the paper (priority 3 = C + 1)
        assert backoffs[0] == 0
        assert backoffs[3] == 5

    def test_collision_freedom_exhaustive_single_pair(self):
        """All (sigma, C, xi) combinations give distinct backoffs (N = 4)."""
        for sigma in itertools.permutations(range(1, 5)):
            for c in range(1, 4):
                down = sigma.index(c)
                up = sigma.index(c + 1)
                for xi_down in (-1, 1):
                    for xi_up in (-1, 1):
                        backoffs = compute_backoffs(
                            sigma, (c,), {down: xi_down, up: xi_up}
                        )
                        values = list(backoffs.values())
                        assert len(set(values)) == len(values)
                        assert max(values) <= 5  # N + 1

    def test_collision_freedom_multi_pair(self):
        """Non-consecutive pairs keep distinct backoffs (N = 6, 2 pairs)."""
        for sigma in itertools.permutations(range(1, 7)):
            for candidates in [(1, 3), (2, 4), (1, 5), (3, 5)]:
                xi = {}
                for c in candidates:
                    xi[sigma.index(c)] = 1
                    xi[sigma.index(c + 1)] = -1
                backoffs = compute_backoffs(sigma, candidates, xi)
                values = list(backoffs.values())
                assert len(set(values)) == len(values)

    def test_max_backoff_bound(self):
        """Section IV-C: the backoff timer is at most N + 1 (single pair)."""
        rng = np.random.default_rng(0)
        for _ in range(200):
            n = int(rng.integers(2, 9))
            sigma = tuple(rng.permutation(n) + 1)
            c = int(rng.integers(1, n))
            xi = {sigma.index(c): -1, sigma.index(c + 1): 1}
            backoffs = compute_backoffs(sigma, (c,), xi)
            assert max(backoffs.values()) <= n + 1


class TestProtocolInvariants:
    def test_priorities_always_permutation(self):
        spec = make_spec(n=5, slots=10, p=0.6)
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=0)
        for _ in range(500):
            sim.step()
            assert is_priority_vector(policy.priorities)

    def test_priorities_permutation_under_saturation(self):
        """Saturated intervals (tiny slot budget) must not corrupt sigma."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(5, 3),
            channel=BernoulliChannel.symmetric(5, 0.5),
            timing=idealized_timing(4),  # far below demand
            delivery_ratios=0.2,
        )
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=1)
        for _ in range(500):
            sim.step()
            assert is_priority_vector(policy.priorities)

    def test_at_most_one_adjacent_swap_per_interval(self):
        spec = make_spec(n=5)
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=2)
        previous = policy.priorities
        for _ in range(300):
            sim.step()
            current = policy.priorities
            diff = [i for i in range(5) if previous[i] != current[i]]
            assert len(diff) in (0, 2)
            if diff:
                i, j = diff
                assert abs(previous[i] - previous[j]) == 1
            previous = current

    def test_swap_changes_match_decisions(self):
        spec = make_spec(n=4)
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=3)
        for _ in range(200):
            before = policy.priorities
            arrivals = spec.arrivals.sample(sim.rng.arrivals)
            outcome = policy.run_interval(
                sim.ledger.interval, arrivals, sim.ledger.positive_debts, sim.rng
            )
            sim.ledger.record_interval(outcome.deliveries)
            (decision,) = outcome.info["swaps"]
            after = policy.priorities
            if decision.committed:
                assert before != after
                assert decision.xi_down == -1 and decision.xi_up == 1
            else:
                assert before == after

    def test_non_candidates_never_move(self):
        spec = make_spec(n=6)
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=4)
        for _ in range(200):
            before = policy.priorities
            arrivals = spec.arrivals.sample(sim.rng.arrivals)
            outcome = policy.run_interval(
                sim.ledger.interval, arrivals, sim.ledger.positive_debts, sim.rng
            )
            sim.ledger.record_interval(outcome.deliveries)
            (decision,) = outcome.info["swaps"]
            after = policy.priorities
            for link in range(6):
                if link not in (decision.down_link, decision.up_link):
                    assert before[link] == after[link]

    def test_collision_free_no_collisions_reported(self):
        spec = make_spec(n=5, p=0.7)
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=5)
        result = sim.run(300)
        assert int(result.collisions.sum()) == 0


class TestServiceSemantics:
    def test_all_served_with_ample_capacity(self):
        spec = make_spec(n=3, slots=10, p=1.0)
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=6)
        result = sim.run(100)
        np.testing.assert_array_equal(
            result.deliveries, np.ones((100, 3), dtype=np.int64)
        )

    def test_priority_order_decides_scarce_capacity(self):
        """One slot, perfect channels: exactly the top-priority link wins."""
        spec = make_spec(n=3, slots=1, p=1.0)
        policy = DPProtocol(
            bias=ConstantSwapBias(0.5), initial_priorities=(2, 1, 3)
        )
        policy.bind(spec)
        rng = RngBundle(7)
        outcome = policy.run_interval(
            0, np.array([1, 1, 1]), np.zeros(3), rng
        )
        # sigma = (2, 1, 3): link 1 holds priority 1.  Unless the candidate
        # pair reshuffled the transmission order, the winner is the link
        # whose backoff is 0.
        backoffs = outcome.info["backoffs"]
        winner = min(range(3), key=lambda l: backoffs[l])
        assert outcome.deliveries[winner] == 1
        assert outcome.deliveries.sum() == 1

    def test_overhead_accounting_realistic_timing(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BurstyVideoArrivals.symmetric(6, 0.5),
            channel=BernoulliChannel.symmetric(6, 0.7),
            timing=video_timing(),
            delivery_ratios=0.9,
        )
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=8)
        result = sim.run(200)
        overhead = result.overhead_time_us
        # Backoff overhead is bounded by (N + 1) slots plus two empty
        # packets per interval (Section IV-C).
        bound = 7 * spec.timing.backoff_slot_us + 2 * spec.timing.empty_airtime_us
        assert np.all(overhead <= bound + 1e-9)
        assert overhead.max() > 0  # some overhead does occur

    def test_idealized_timing_has_zero_overhead(self):
        spec = make_spec(n=4)
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=9)
        result = sim.run(100)
        assert float(result.overhead_time_us.max()) == 0.0


class TestMultiPair:
    def test_multi_pair_swaps_disjoint(self):
        spec = make_spec(n=8, slots=16)
        policy = DPProtocol(bias=ConstantSwapBias(0.5), num_pairs=3)
        sim = IntervalSimulator(spec, policy, seed=10)
        for _ in range(300):
            before = policy.priorities
            sim.step()
            after = policy.priorities
            assert is_priority_vector(after)
            moved = [i for i in range(8) if before[i] != after[i]]
            assert len(moved) <= 6  # at most 3 disjoint swaps

    def test_num_pairs_validation(self):
        with pytest.raises(ValueError):
            DPProtocol(bias=ConstantSwapBias(0.5), num_pairs=0)
        spec = make_spec(n=4)
        policy = DPProtocol(bias=ConstantSwapBias(0.5), num_pairs=3)
        with pytest.raises(ValueError):
            policy.bind(spec)

    def test_multi_pair_mixes_faster(self):
        """More pairs per interval -> more committed swaps per interval."""

        def committed_swaps(num_pairs: int) -> int:
            spec = make_spec(n=8, slots=16)
            policy = DPProtocol(
                bias=ConstantSwapBias(0.5), num_pairs=num_pairs
            )
            sim = IntervalSimulator(spec, policy, seed=11)
            total = 0
            for _ in range(400):
                arrivals = spec.arrivals.sample(sim.rng.arrivals)
                outcome = policy.run_interval(
                    sim.ledger.interval,
                    arrivals,
                    sim.ledger.positive_debts,
                    sim.rng,
                )
                sim.ledger.record_interval(outcome.deliveries)
                total += sum(d.committed for d in outcome.info["swaps"])
            return total

        assert committed_swaps(3) > 1.5 * committed_swaps(1)


class TestStateControls:
    def test_initial_priorities_respected(self):
        spec = make_spec(n=4)
        policy = DPProtocol(
            bias=ConstantSwapBias(0.5), initial_priorities=(4, 3, 2, 1)
        )
        policy.bind(spec)
        assert policy.priorities == (4, 3, 2, 1)

    def test_initial_priorities_length_checked(self):
        spec = make_spec(n=4)
        policy = DPProtocol(
            bias=ConstantSwapBias(0.5), initial_priorities=(2, 1, 3)
        )
        with pytest.raises(ValueError):
            policy.bind(spec)

    def test_set_priorities(self):
        spec = make_spec(n=3)
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        policy.bind(spec)
        policy.set_priorities((3, 1, 2))
        assert policy.priorities == (3, 1, 2)
        with pytest.raises(ValueError):
            policy.set_priorities((1, 2))

    def test_bad_bias_output_detected(self):
        class BrokenBias(ConstantSwapBias):
            def mu(self, link, positive_debt, reliability):
                return 1.5

        spec = make_spec(n=3)
        policy = DPProtocol(bias=BrokenBias(0.5))
        policy.bind(spec)
        rng = RngBundle(0)
        with pytest.raises(ValueError, match="mu"):
            policy.run_interval(0, np.array([1, 1, 1]), np.zeros(3), rng)

    def test_single_link_network_trivial(self):
        spec = make_spec(n=1, slots=3)
        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        sim = IntervalSimulator(spec, policy, seed=12)
        result = sim.run(50)
        np.testing.assert_array_equal(result.deliveries, np.ones((50, 1)))
        assert policy.priorities == (1,)
