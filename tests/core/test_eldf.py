"""Tests for the centralized ELDF / LDF policy (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    ELDFPolicy,
    LDFPolicy,
    NetworkSpec,
    PowerInfluence,
    RngBundle,
    idealized_timing,
    run_simulation,
)


def make_spec(reliabilities, timing_slots=6, counts=1):
    n = len(reliabilities)
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(n, counts),
        channel=BernoulliChannel(success_probs=tuple(reliabilities)),
        timing=idealized_timing(timing_slots),
        delivery_ratios=0.5,
    )


class TestPriorityOrder:
    def test_sorts_by_weighted_debt(self):
        policy = ELDFPolicy()
        policy.bind(make_spec([0.5, 1.0, 0.8]))
        # Weights: f(d) * p with f = identity.
        order = policy.priority_order(np.array([2.0, 2.0, 2.0]))
        # 2*0.5=1.0, 2*1.0=2.0, 2*0.8=1.6 -> links (1, 2, 0).
        assert order == (1, 2, 0)

    def test_tie_break_by_link_index(self):
        policy = ELDFPolicy()
        policy.bind(make_spec([0.7, 0.7, 0.7]))
        order = policy.priority_order(np.array([1.0, 1.0, 1.0]))
        assert order == (0, 1, 2)

    def test_influence_function_changes_order(self):
        """With f(x) = x^2, a large debt can outweigh a reliability gap."""
        linear = ELDFPolicy()
        quadratic = ELDFPolicy(influence=PowerInfluence(exponent=2))
        spec = make_spec([1.0, 0.5])
        linear.bind(spec)
        quadratic.bind(spec)
        debts = np.array([1.0, 3.0])
        # linear: 1*1.0 = 1.0 vs 3*0.5 = 1.5 -> link 1 first.
        assert linear.priority_order(debts) == (1, 0)
        # quadratic: 1 vs 9*0.5 = 4.5 -> link 1 still first.
        assert quadratic.priority_order(debts) == (1, 0)
        # but at debts (2, 2): linear 2.0 vs 1.0; quadratic 4 vs 2 — same
        # order, both favor the reliable link.
        assert linear.priority_order(np.array([2.0, 2.0])) == (0, 1)
        assert quadratic.priority_order(np.array([2.0, 2.0])) == (0, 1)


class TestIntervalExecution:
    def test_perfect_channel_serves_everything(self, tiny_spec):
        policy = LDFPolicy()
        policy.bind(tiny_spec)
        rng = RngBundle(0)
        outcome = policy.run_interval(
            0, np.array([1, 1, 1]), np.zeros(3), rng
        )
        np.testing.assert_array_equal(outcome.deliveries, [1, 1, 1])
        assert outcome.collisions == 0
        assert outcome.overhead_time_us == 0.0

    def test_budget_exhaustion_cuts_low_priority(self):
        """With 2 slots, perfect channels and 3 one-packet links, the
        lowest-priority link gets nothing."""
        spec = make_spec([1.0, 1.0, 1.0], timing_slots=2)
        policy = LDFPolicy()
        policy.bind(spec)
        rng = RngBundle(0)
        outcome = policy.run_interval(
            0, np.array([1, 1, 1]), np.array([3.0, 2.0, 1.0]), rng
        )
        np.testing.assert_array_equal(outcome.deliveries, [1, 1, 0])

    def test_deliveries_never_exceed_arrivals(self):
        spec = make_spec([0.6, 0.9], timing_slots=20, counts=2)
        policy = LDFPolicy()
        policy.bind(spec)
        rng = RngBundle(3)
        for k in range(100):
            arrivals = np.array([2, 2])
            outcome = policy.run_interval(k, arrivals, np.zeros(2), rng)
            assert np.all(outcome.deliveries <= arrivals)

    def test_skips_empty_links_without_consuming_time(self):
        spec = make_spec([1.0, 1.0], timing_slots=1)
        policy = LDFPolicy()
        policy.bind(spec)
        rng = RngBundle(0)
        # Link 0 has higher debt but no arrivals; link 1 must still be served.
        outcome = policy.run_interval(
            0, np.array([0, 1]), np.array([5.0, 0.0]), rng
        )
        np.testing.assert_array_equal(outcome.deliveries, [0, 1])

    def test_priorities_reported(self):
        spec = make_spec([1.0, 1.0])
        policy = LDFPolicy()
        policy.bind(spec)
        rng = RngBundle(0)
        outcome = policy.run_interval(
            0, np.array([1, 1]), np.array([0.0, 1.0]), rng
        )
        # Link 1 has the larger debt -> priority 1.
        assert outcome.priorities == (2, 1)


class TestLongRunBehaviour:
    def test_fulfills_feasible_symmetric_requirement(self, lossy_spec):
        result = run_simulation(lossy_spec, LDFPolicy(), 2000, seed=1)
        assert result.total_deficiency() < 0.02

    def test_debt_balancing_under_scarcity(self):
        """Two identical links, capacity for one packet per interval: LDF
        alternates and both get ~half service."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(2, 1),
            channel=BernoulliChannel.symmetric(2, 1.0),
            timing=idealized_timing(1),
            delivery_ratios=0.5,
        )
        result = run_simulation(spec, LDFPolicy(), 500, seed=0)
        throughput = result.timely_throughput()
        np.testing.assert_allclose(throughput, [0.5, 0.5], atol=0.01)

    def test_ldf_is_eldf_with_linear_influence(self, lossy_spec):
        """Remark 2: same seeds, same trajectories."""
        a = run_simulation(lossy_spec, LDFPolicy(), 300, seed=9)
        b = run_simulation(lossy_spec, ELDFPolicy(), 300, seed=9)
        np.testing.assert_array_equal(a.deliveries, b.deliveries)
