"""Tests for online reliability estimation and the learning DB-DP."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    DBDPPolicy,
    NetworkSpec,
    idealized_timing,
    run_simulation,
)
from repro.core.estimation import EstimatedDBDPPolicy, ReliabilityEstimator


class TestReliabilityEstimator:
    def test_beta_converges_to_truth(self, rng):
        estimator = ReliabilityEstimator(2, mode="beta")
        ps = np.array([0.3, 0.8])
        for _ in range(400):
            attempts = rng.integers(1, 5, size=2)
            deliveries = rng.binomial(attempts, ps)
            estimator.update(attempts, deliveries)
        np.testing.assert_allclose(estimator.estimates(), ps, atol=0.05)

    def test_prior_before_observations(self):
        estimator = ReliabilityEstimator(3, prior_mean=0.6)
        np.testing.assert_allclose(estimator.estimates(), [0.6] * 3)

    def test_untouched_link_keeps_prior(self, rng):
        estimator = ReliabilityEstimator(2, mode="beta", prior_mean=0.5)
        for _ in range(50):
            estimator.update([4, 0], [4, 0])
        estimates = estimator.estimates()
        assert estimates[0] > 0.95
        assert estimates[1] == pytest.approx(0.5, abs=0.01)

    def test_ewma_tracks_change(self, rng):
        estimator = ReliabilityEstimator(1, mode="ewma", ewma_alpha=0.2)
        for _ in range(60):
            estimator.update([5], [5])  # perfect phase
        high = estimator.estimates()[0]
        for _ in range(60):
            estimator.update([5], [0])  # outage phase
        low = estimator.estimates()[0]
        assert high > 0.95 and low < 0.05

    def test_beta_is_sluggish_versus_ewma_after_change(self):
        beta = ReliabilityEstimator(1, mode="beta")
        ewma = ReliabilityEstimator(1, mode="ewma", ewma_alpha=0.2)
        for est in (beta, ewma):
            for _ in range(200):
                est.update([3], [3])
            for _ in range(20):
                est.update([3], [0])
        assert ewma.estimates()[0] < beta.estimates()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityEstimator(0)
        with pytest.raises(ValueError):
            ReliabilityEstimator(1, mode="other")
        with pytest.raises(ValueError):
            ReliabilityEstimator(1, prior_mean=1.0)
        estimator = ReliabilityEstimator(2)
        with pytest.raises(ValueError):
            estimator.update([1], [1])
        with pytest.raises(ValueError):
            estimator.update([1, 1], [2, 0])

    def test_estimates_clipped_into_open_interval(self):
        estimator = ReliabilityEstimator(1, mode="ewma", ewma_alpha=1.0)
        estimator.update([10], [0])
        assert 0.0 < estimator.estimates()[0] < 1.0


class TestEstimatedDBDP:
    def make_spec(self):
        return NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(4, 0.8),
            channel=BernoulliChannel(success_probs=(0.4, 0.6, 0.8, 0.95)),
            timing=idealized_timing(8),
            delivery_ratios=0.85,
        )

    def test_estimates_converge_during_operation(self):
        spec = self.make_spec()
        policy = EstimatedDBDPPolicy()
        run_simulation(spec, policy, 2500, seed=0)
        np.testing.assert_allclose(
            policy.estimator.estimates(),
            spec.reliabilities,
            atol=0.08,
        )

    def test_fulfills_like_oracle_dbdp(self):
        spec = self.make_spec()
        learned = run_simulation(spec, EstimatedDBDPPolicy(), 2500, seed=1)
        oracle = run_simulation(spec, DBDPPolicy(), 2500, seed=1)
        assert learned.total_deficiency() <= oracle.total_deficiency() + 0.1

    def test_unbound_estimator_raises(self):
        policy = EstimatedDBDPPolicy()
        with pytest.raises(RuntimeError):
            _ = policy.estimator

    def test_outcome_carries_estimates(self):
        from repro.sim.rng import RngBundle

        spec = self.make_spec()
        policy = EstimatedDBDPPolicy()
        policy.bind(spec)
        arrivals = np.array([1, 1, 1, 1])
        outcome = policy.run_interval(0, arrivals, np.zeros(4), RngBundle(0))
        assert "reliability_estimates" in outcome.info
