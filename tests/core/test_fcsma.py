"""Tests for the discretized FCSMA baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    DebtWindowMap,
    FCSMAPolicy,
    NetworkSpec,
    RngBundle,
    idealized_timing,
    run_simulation,
    video_timing,
)
from repro.traffic.arrivals import BurstyVideoArrivals


class TestDebtWindowMap:
    def test_sections(self):
        window_map = DebtWindowMap(windows=(32, 16, 8), section_width=1.0)
        assert window_map.window(0.0) == 32
        assert window_map.window(0.99) == 32
        assert window_map.window(1.0) == 16
        assert window_map.window(2.0) == 8

    def test_saturation(self):
        """The paper's criticism: beyond the last section the map is
        oblivious to further debt growth."""
        window_map = DebtWindowMap(windows=(32, 16, 8), section_width=1.0)
        assert window_map.window(2.0) == window_map.window(1000.0) == 8
        assert window_map.saturation_debt == 2.0

    def test_rejects_increasing_windows(self):
        with pytest.raises(ValueError, match="non-increasing"):
            DebtWindowMap(windows=(8, 16))

    def test_rejects_empty_or_invalid(self):
        with pytest.raises(ValueError):
            DebtWindowMap(windows=())
        with pytest.raises(ValueError):
            DebtWindowMap(windows=(4, 0))
        with pytest.raises(ValueError):
            DebtWindowMap(windows=(4,), section_width=0.0)

    def test_rejects_negative_debt(self):
        with pytest.raises(ValueError):
            DebtWindowMap().window(-1.0)


def make_spec(n=6, p=0.7, alpha=0.5):
    return NetworkSpec.from_delivery_ratios(
        arrivals=BurstyVideoArrivals.symmetric(n, alpha),
        channel=BernoulliChannel.symmetric(n, p),
        timing=video_timing(),
        delivery_ratios=0.9,
    )


class TestFCSMAExecution:
    def test_collisions_happen(self):
        spec = make_spec(n=10, alpha=0.8)
        result = run_simulation(spec, FCSMAPolicy(), 200, seed=0)
        assert int(result.collisions.sum()) > 0

    def test_deliveries_bounded_by_arrivals(self):
        spec = make_spec()
        result = run_simulation(spec, FCSMAPolicy(), 300, seed=1)
        assert np.all(result.deliveries <= result.arrivals)

    def test_no_contenders_no_time_used(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(3, 0),
            channel=BernoulliChannel.symmetric(3, 0.7),
            timing=video_timing(),
            delivery_ratios=0.0,
        )
        policy = FCSMAPolicy()
        policy.bind(spec)
        outcome = policy.run_interval(
            0, np.zeros(3, dtype=np.int64), np.zeros(3), RngBundle(0)
        )
        assert outcome.busy_time_us == 0.0
        assert outcome.collisions == 0

    def test_single_link_never_collides(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(1, 2),
            channel=BernoulliChannel.symmetric(1, 1.0),
            timing=video_timing(),
            delivery_ratios=1.0,
        )
        result = run_simulation(spec, FCSMAPolicy(), 100, seed=2)
        assert int(result.collisions.sum()) == 0
        np.testing.assert_array_equal(
            result.deliveries, np.full((100, 1), 2)
        )

    def test_overhead_grows_with_network_size(self):
        small = run_simulation(make_spec(n=4), FCSMAPolicy(), 200, seed=3)
        large = run_simulation(make_spec(n=16), FCSMAPolicy(), 200, seed=3)
        small_rate = small.collisions.sum() / max(small.attempts.sum(), 1)
        large_rate = large.collisions.sum() / max(large.attempts.sum(), 1)
        assert large_rate > small_rate

    def test_indebted_link_wins_more(self):
        """Smaller window for high debt -> more wins in contention."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(2, 3),
            channel=BernoulliChannel.symmetric(2, 1.0),
            timing=idealized_timing(3),
            delivery_ratios=0.5,
        )
        policy = FCSMAPolicy(
            window_map=DebtWindowMap(windows=(64, 2), section_width=1.0)
        )
        policy.bind(spec)
        rng = RngBundle(4)
        wins = np.zeros(2)
        for k in range(300):
            outcome = policy.run_interval(
                k,
                np.array([3, 3]),
                np.array([0.0, 5.0]),  # link 1 deeply in debt
                rng,
            )
            wins += outcome.deliveries
        assert wins[1] > 2.0 * wins[0]

    def test_debt_oblivious_beyond_saturation(self):
        """Two links, both far above the saturation debt: equal windows,
        symmetric service despite a 10x debt difference."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(2, 3),
            channel=BernoulliChannel.symmetric(2, 1.0),
            timing=idealized_timing(3),
            delivery_ratios=0.5,
        )
        policy = FCSMAPolicy(
            window_map=DebtWindowMap(windows=(64, 16), section_width=1.0)
        )
        policy.bind(spec)
        rng = RngBundle(5)
        wins = np.zeros(2)
        for k in range(600):
            outcome = policy.run_interval(
                k, np.array([3, 3]), np.array([10.0, 100.0]), rng
            )
            wins += outcome.deliveries
        assert wins[1] < 1.3 * wins[0]  # no debt responsiveness left
