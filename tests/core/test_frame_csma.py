"""Tests for the frame-based CSMA baseline (reference [23])."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    FrameCSMAPolicy,
    LDFPolicy,
    NetworkSpec,
    RngBundle,
    idealized_timing,
    run_simulation,
    video_timing,
)
from repro.traffic.arrivals import BurstyVideoArrivals


def make_spec(n=6, p=0.7, alpha=0.55, rho=0.9):
    return NetworkSpec.from_delivery_ratios(
        arrivals=BurstyVideoArrivals.symmetric(n, alpha),
        channel=BernoulliChannel.symmetric(n, p),
        timing=video_timing(),
        delivery_ratios=rho,
    )


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameCSMAPolicy(control_slots=-1)
        with pytest.raises(ValueError):
            FrameCSMAPolicy(headroom=0.0)


class TestScheduleSemantics:
    def test_deliveries_bounded_by_arrivals(self):
        result = run_simulation(make_spec(), FrameCSMAPolicy(), 300, seed=0)
        assert np.all(result.deliveries <= result.arrivals)

    def test_collision_free(self):
        result = run_simulation(make_spec(), FrameCSMAPolicy(), 200, seed=0)
        assert int(result.collisions.sum()) == 0

    def test_control_phase_costs_airtime(self):
        spec = make_spec()
        with_control = run_simulation(
            spec, FrameCSMAPolicy(control_slots=50), 200, seed=1
        )
        without_control = run_simulation(
            spec, FrameCSMAPolicy(control_slots=0), 200, seed=1
        )
        assert (
            with_control.overhead_time_us.mean()
            > without_control.overhead_time_us.mean()
        )

    def test_perfect_channels_match_debt_order_service(self):
        """With p = 1 block sizes are exact, so frame scheduling delivers
        everything deliverable — the reliable-channel optimality of [23]."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(4, 2),
            channel=BernoulliChannel.symmetric(4, 1.0),
            timing=idealized_timing(8),
            delivery_ratios=1.0,
        )
        result = run_simulation(
            spec, FrameCSMAPolicy(control_slots=0), 100, seed=2
        )
        np.testing.assert_array_equal(
            result.deliveries, np.full((100, 4), 2)
        )

    def test_blocks_do_not_exceed_budget(self):
        spec = make_spec(n=10, alpha=0.9)
        policy = FrameCSMAPolicy()
        policy.bind(spec)
        rng = RngBundle(3)
        arrivals = spec.arrivals.sample(rng.arrivals)
        outcome = policy.run_interval(0, arrivals, np.zeros(10), rng)
        budget = int(
            (spec.timing.interval_us - 16 * spec.timing.backoff_slot_us)
            // spec.timing.data_airtime_us
        )
        assert sum(outcome.info["blocks"].values()) <= budget


class TestSuboptimalityUnderUnreliableChannels:
    """The paper's Section I argument: frame-based schedules cannot adapt
    to losses within the frame, so they trail the adaptive policies."""

    def test_unused_block_slack_exists(self):
        result = run_simulation(make_spec(p=0.5), FrameCSMAPolicy(), 300, seed=4)
        # Idle slack inside blocks shows up as overhead.
        assert result.overhead_time_us.mean() > 0

    def test_trails_ldf_at_load(self):
        spec = make_spec(n=8, p=0.6, alpha=0.8, rho=0.9)
        frame = run_simulation(spec, FrameCSMAPolicy(), 1200, seed=5)
        ldf = run_simulation(spec, LDFPolicy(), 1200, seed=5)
        assert frame.total_deficiency() > ldf.total_deficiency()

    def test_matches_ldf_more_closely_with_reliable_channels(self):
        """The deficiency gap shrinks as p -> 1 (where [23] is optimal)."""

        def gap(p):
            spec = make_spec(n=8, p=p, alpha=0.55, rho=0.9)
            frame = run_simulation(spec, FrameCSMAPolicy(control_slots=0), 800, seed=6)
            ldf = run_simulation(spec, LDFPolicy(), 800, seed=6)
            return frame.total_deficiency() - ldf.total_deficiency()

        assert gap(1.0) <= gap(0.5) + 0.05
