"""Tests for debt influence functions (Definition 6)."""

from __future__ import annotations

import math

import pytest

from repro.core.influence import (
    CallableInfluence,
    ExponentialInfluence,
    LinearInfluence,
    LogInfluence,
    PaperLogInfluence,
    PowerInfluence,
    ScaledInfluence,
    check_influence_properties,
)


class TestLinearInfluence:
    def test_identity_values(self):
        f = LinearInfluence()
        assert f(0.0) == 0.0
        assert f(3.5) == 3.5

    def test_scaling(self):
        f = LinearInfluence(scale=2.5)
        assert f(4.0) == 10.0

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            LinearInfluence(scale=0.0)
        with pytest.raises(ValueError):
            LinearInfluence(scale=-1.0)

    def test_rejects_negative_argument(self):
        with pytest.raises(ValueError):
            LinearInfluence()(-0.1)

    def test_satisfies_definition_6(self):
        assert check_influence_properties(LinearInfluence()).is_valid


class TestPowerInfluence:
    @pytest.mark.parametrize("m", [0.5, 1.0, 2.0, 3.0])
    def test_valid_for_positive_exponents(self, m):
        assert check_influence_properties(PowerInfluence(exponent=m)).is_valid

    def test_exponent_zero_fails_divergence(self):
        """The paper lists x**m with m >= 0 as valid, but m = 0 gives the
        constant 1, which violates Definition 6's own requirement
        f(x) -> inf; the checker follows the definition."""
        report = check_influence_properties(PowerInfluence(exponent=0.0))
        assert not report.diverges
        assert report.nondecreasing and report.ratio_property

    def test_values(self):
        assert PowerInfluence(exponent=2)(3.0) == 9.0
        assert PowerInfluence(exponent=0)(7.0) == 1.0

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            PowerInfluence(exponent=-1)


class TestLogInfluence:
    def test_zero_at_origin(self):
        assert LogInfluence()(0.0) == 0.0

    def test_base_conversion(self):
        f = LogInfluence(base=10.0)
        assert f(9.0) == pytest.approx(1.0)  # log10(1 + 9) = 1

    def test_satisfies_definition_6(self):
        assert check_influence_properties(LogInfluence()).is_valid

    def test_rejects_base_at_most_one(self):
        with pytest.raises(ValueError):
            LogInfluence(base=1.0)


class TestPaperLogInfluence:
    """The paper's evaluation function f(x) = log(max(1, 100(x+1)))."""

    def test_value_at_zero(self):
        assert PaperLogInfluence()(0.0) == pytest.approx(math.log(100.0))

    def test_matches_formula(self):
        f = PaperLogInfluence()
        for x in [0.0, 0.5, 3.0, 100.0]:
            assert f(x) == pytest.approx(math.log(max(1.0, 100.0 * (x + 1.0))))

    def test_clipping_branch_active_for_tiny_coefficient(self):
        f = PaperLogInfluence(coefficient=0.01)
        # 0.01 * (0 + 1) < 1, so the max(1, .) clip produces log(1) = 0.
        assert f(0.0) == 0.0

    def test_nondecreasing(self):
        f = PaperLogInfluence()
        values = [f(x * 0.1) for x in range(200)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_satisfies_definition_6(self):
        assert check_influence_properties(PaperLogInfluence()).is_valid


class TestExponentialCounterexample:
    def test_exponential_violates_ratio_property(self):
        """The paper: a**x with a > 1 is NOT a debt influence function."""
        report = check_influence_properties(
            ExponentialInfluence(base=1.05), probe_points=(100.0, 500.0, 1000.0)
        )
        assert not report.ratio_property
        assert not report.is_valid

    def test_exponential_is_otherwise_well_behaved(self):
        report = check_influence_properties(
            ExponentialInfluence(base=1.001),
            grid=[x * 0.5 for x in range(100)],
            probe_points=(100.0, 500.0, 1000.0),
        )
        assert report.nondecreasing
        assert report.diverges


class TestScaledAndCallable:
    def test_scaled_preserves_validity(self):
        f = ScaledInfluence(inner=LogInfluence(), scale=5.0)
        assert check_influence_properties(f).is_valid
        assert f(10.0) == pytest.approx(5.0 * LogInfluence()(10.0))

    def test_callable_wrapping(self):
        f = CallableInfluence(lambda x: math.sqrt(x), description="sqrt")
        assert f(16.0) == 4.0
        assert f.describe() == "sqrt"
        assert check_influence_properties(f).is_valid

    def test_constant_function_fails_divergence(self):
        f = CallableInfluence(lambda x: 1.0, description="const")
        report = check_influence_properties(f)
        assert not report.diverges
        assert not report.is_valid

    def test_negative_output_rejected(self):
        f = CallableInfluence(lambda x: -1.0)
        with pytest.raises(ValueError):
            f(1.0)


class TestDescribe:
    @pytest.mark.parametrize(
        "func",
        [
            LinearInfluence(),
            PowerInfluence(exponent=2),
            LogInfluence(),
            PaperLogInfluence(),
            ExponentialInfluence(),
        ],
    )
    def test_describe_is_nonempty(self, func):
        assert func.describe()
