"""Tests for permutation / priority-vector algebra (Definitions 7-9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.permutations import (
    adjacent_swap_partners,
    apply_adjacent_swap,
    enumerate_priority_vectors,
    identity_priorities,
    inversions,
    is_adjacent_transposition,
    is_priority_vector,
    link_order_to_priorities,
    priority_to_link_order,
    random_priority_vector,
    symmetric_difference,
    validate_priority_vector,
)


class TestValidation:
    def test_accepts_valid_vectors(self):
        assert is_priority_vector([1])
        assert is_priority_vector([2, 1, 4, 3])

    def test_rejects_invalid(self):
        assert not is_priority_vector([])
        assert not is_priority_vector([0, 1, 2])
        assert not is_priority_vector([1, 1, 2])
        assert not is_priority_vector([1, 2, 4])

    def test_validate_raises(self):
        with pytest.raises(ValueError):
            validate_priority_vector([1, 3])

    def test_identity(self):
        assert identity_priorities(4) == (1, 2, 3, 4)
        with pytest.raises(ValueError):
            identity_priorities(0)


class TestConversions:
    def test_priority_to_link_order(self):
        # Link 0 has priority 2, link 1 priority 1, link 2 priority 3.
        assert priority_to_link_order([2, 1, 3]) == (1, 0, 2)

    def test_round_trip(self):
        for sigma in enumerate_priority_vectors(4):
            order = priority_to_link_order(sigma)
            assert link_order_to_priorities(order) == sigma

    def test_order_validation(self):
        with pytest.raises(ValueError):
            link_order_to_priorities([0, 0, 1])


class TestSymmetricDifference:
    def test_paper_example_1(self):
        """Example 1: sigma = [2,1,4,3], sigma' = [2,4,1,3].

        The example is written in the priority-slot representation
        (entry j = which link holds priority j); this library stores the
        link-indexed inverse (entry n = link n's priority).  Converting
        sigma' = [2,4,1,3] gives the link-indexed vector [3,1,4,2]:
        links 1 and 4 (1-based) exchanged the adjacent priorities 2 and 3.
        """
        sigma_links = [2, 1, 4, 3]  # self-inverse, same in both forms
        sigma_prime_links = [3, 1, 4, 2]
        assert symmetric_difference(sigma_links, sigma_prime_links) == (0, 3)
        assert is_adjacent_transposition(sigma_links, sigma_prime_links)

    def test_identical_vectors(self):
        assert symmetric_difference([1, 2], [1, 2]) == ()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            symmetric_difference([1, 2], [1, 2, 3])

    def test_non_adjacent_swap_detected(self):
        # Exchanging priorities 1 and 3 is a transposition but not adjacent.
        assert not is_adjacent_transposition([1, 2, 3], [3, 2, 1])

    def test_three_way_difference_is_not_transposition(self):
        assert not is_adjacent_transposition([1, 2, 3], [2, 3, 1])


class TestAdjacentSwap:
    def test_partners(self):
        down, up = adjacent_swap_partners([2, 1, 4, 3], c=1)
        assert down == 1 and up == 0

    def test_apply(self):
        assert apply_adjacent_swap([1, 2, 3, 4], c=2) == (1, 3, 2, 4)

    def test_apply_twice_is_identity(self):
        sigma = (3, 1, 4, 2)
        for c in range(1, 4):
            assert apply_adjacent_swap(apply_adjacent_swap(sigma, c), c) == sigma

    def test_candidate_range(self):
        with pytest.raises(ValueError):
            adjacent_swap_partners([1, 2, 3], c=3)
        with pytest.raises(ValueError):
            adjacent_swap_partners([1, 2, 3], c=0)

    def test_swap_is_adjacent_transposition(self):
        for sigma in enumerate_priority_vectors(4):
            for c in range(1, 4):
                swapped = apply_adjacent_swap(sigma, c)
                assert is_adjacent_transposition(sigma, swapped)


class TestEnumerationAndRandom:
    def test_enumeration_size(self):
        assert len(list(enumerate_priority_vectors(4))) == 24

    def test_enumeration_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            enumerate_priority_vectors(0)

    def test_random_vector_is_valid(self):
        rng = np.random.default_rng(5)
        for _ in range(50):
            assert is_priority_vector(random_priority_vector(6, rng))

    def test_random_vector_is_roughly_uniform(self):
        rng = np.random.default_rng(5)
        first_slot = [random_priority_vector(3, rng)[0] for _ in range(3000)]
        counts = np.bincount(first_slot)[1:]
        assert counts.min() > 800  # each of 3 values ~1000


class TestInversions:
    def test_identity_has_none(self):
        assert inversions([1, 2, 3, 4]) == 0

    def test_reverse_is_maximal(self):
        assert inversions([4, 3, 2, 1]) == 6

    def test_single_adjacent_swap_changes_by_one(self):
        sigma = (1, 2, 3, 4)
        swapped = apply_adjacent_swap(sigma, c=2)
        assert abs(inversions(swapped) - inversions(sigma)) == 1
