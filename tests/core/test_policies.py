"""Tests for the policy framework and the shared service primitive."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliChannel, GilbertElliottChannel, LDFPolicy
from repro.core.policies import serve_link_attempts


class TestBindLifecycle:
    def test_unbound_policy_raises(self):
        policy = LDFPolicy()
        with pytest.raises(RuntimeError, match="not bound"):
            _ = policy.spec

    def test_bind_exposes_spec(self, tiny_spec):
        policy = LDFPolicy()
        policy.bind(tiny_spec)
        assert policy.spec is tiny_spec


class TestServeLinkAttempts:
    def test_zero_packets(self, rng):
        channel = BernoulliChannel.symmetric(1, 0.5)
        assert serve_link_attempts(0, 0, 10, channel, rng) == (0, 0)

    def test_zero_budget(self, rng):
        channel = BernoulliChannel.symmetric(1, 0.5)
        assert serve_link_attempts(0, 3, 0, channel, rng) == (0, 0)

    def test_perfect_channel(self, rng):
        channel = BernoulliChannel.symmetric(1, 1.0)
        delivered, attempts = serve_link_attempts(0, 5, 10, channel, rng)
        assert delivered == 5 and attempts == 5

    def test_perfect_channel_budget_limited(self, rng):
        channel = BernoulliChannel.symmetric(1, 1.0)
        delivered, attempts = serve_link_attempts(0, 5, 3, channel, rng)
        assert delivered == 3 and attempts == 3

    def test_attempts_never_exceed_budget(self, rng):
        channel = BernoulliChannel.symmetric(1, 0.3)
        for _ in range(200):
            delivered, attempts = serve_link_attempts(0, 4, 7, channel, rng)
            assert attempts <= 7
            assert delivered <= 4
            assert delivered <= attempts

    def test_full_delivery_uses_exactly_needed_attempts(self, rng):
        channel = BernoulliChannel.symmetric(1, 0.9)
        for _ in range(200):
            delivered, attempts = serve_link_attempts(0, 2, 100, channel, rng)
            if delivered == 2:
                assert attempts >= 2

    def test_geometric_fast_path_statistics(self):
        """Mean attempts per delivery must approach 1/p."""
        channel = BernoulliChannel.symmetric(1, 0.4)
        rng = np.random.default_rng(1)
        total_attempts = 0
        total_delivered = 0
        for _ in range(3000):
            delivered, attempts = serve_link_attempts(0, 1, 1000, channel, rng)
            total_attempts += attempts
            total_delivered += delivered
        assert total_delivered == 3000  # budget is effectively unlimited
        assert total_attempts / total_delivered == pytest.approx(2.5, rel=0.1)

    def test_stateful_channel_path(self):
        """Gilbert-Elliott falls back to per-attempt sampling."""
        channel = GilbertElliottChannel(1, p_good=1.0, p_bad=1.0)
        rng = np.random.default_rng(2)
        delivered, attempts = serve_link_attempts(0, 3, 10, channel, rng)
        assert delivered == 3 and attempts == 3

    def test_stateful_channel_budget(self):
        channel = GilbertElliottChannel(
            1, p_good=0.5, p_bad=0.1, p_stay_good=0.5, p_stay_bad=0.5
        )
        rng = np.random.default_rng(3)
        delivered, attempts = serve_link_attempts(0, 100, 20, channel, rng)
        assert attempts <= 20
        assert delivered <= attempts

    def test_delivery_rate_matches_reliability(self):
        """Over a single-attempt budget the success rate is exactly p."""
        channel = BernoulliChannel.symmetric(1, 0.7)
        rng = np.random.default_rng(4)
        wins = sum(
            serve_link_attempts(0, 1, 1, channel, rng)[0] for _ in range(5000)
        )
        assert wins / 5000 == pytest.approx(0.7, abs=0.02)
