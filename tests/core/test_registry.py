"""Tests for the policy registry (repro.core.registry).

The registry is the single dispatch authority: every engine, the sweep
cache, and the CLI consult :class:`PolicyDescriptor` capability flags and
config round-trips instead of type-switching on policy classes.
"""

import pickle

import pytest

from repro.core import registry
from repro.core.dbdp import DBDPPolicy
from repro.core.dcf import DCFPolicy
from repro.core.dp_protocol import ConstantSwapBias, DPProtocol
from repro.core.eldf import ELDFPolicy, LDFPolicy
from repro.core.estimation import EstimatedDBDPPolicy
from repro.core.fcsma import FCSMAPolicy
from repro.core.frame_csma import FrameCSMAPolicy
from repro.core.policies import IntervalMac
from repro.core.registry import PolicyCapabilities, PolicyDescriptor
from repro.core.round_robin import RoundRobinPolicy
from repro.core.static_priority import StaticPriorityPolicy

BUILTIN_NAMES = (
    "DB-DP",
    "DCF",
    "DP",
    "ELDF",
    "FCSMA",
    "FrameCSMA",
    "LDF",
    "RoundRobin",
    "StaticPriority",
)


class _ToyPolicy(IntervalMac):
    """Unregistered stand-in for registration tests."""

    name = "Toy"

    def run_interval(self, k, arrivals, positive_debts, rng):  # pragma: no cover
        raise NotImplementedError


def _toy_descriptor(name="Toy", policy_class=_ToyPolicy):
    return PolicyDescriptor(
        name=name,
        policy_class=policy_class,
        to_config=lambda p: {},
        from_config=lambda config: policy_class(),
    )


# ----------------------------------------------------------------------
# Registration and lookup
# ----------------------------------------------------------------------
def test_available_lists_builtins_sorted():
    assert registry.available() == BUILTIN_NAMES


def test_get_unknown_name_lists_available():
    with pytest.raises(KeyError, match="DB-DP"):
        registry.get("NoSuchPolicy")


def test_register_enforces_unique_names():
    registry.register(_toy_descriptor())
    try:
        class Other(IntervalMac):
            name = "Other"

            def run_interval(self, k, arrivals, positive_debts, rng):
                raise NotImplementedError  # pragma: no cover

        with pytest.raises(ValueError, match="already registered"):
            registry.register(_toy_descriptor(policy_class=Other))
    finally:
        registry.unregister("Toy")


def test_register_enforces_unique_classes():
    registry.register(_toy_descriptor())
    try:
        with pytest.raises(ValueError, match="already registered"):
            registry.register(_toy_descriptor(name="Toy2"))
    finally:
        registry.unregister("Toy")


def test_reregistering_same_pair_is_noop():
    first = registry.register(_toy_descriptor())
    try:
        again = registry.register(_toy_descriptor())
        assert again is first
    finally:
        registry.unregister("Toy")


def test_unregister_removes_name_and_class():
    registry.register(_toy_descriptor())
    registry.unregister("Toy")
    assert "Toy" not in registry.available()
    assert registry.descriptor_for(_ToyPolicy) is None


# ----------------------------------------------------------------------
# Descriptor validation
# ----------------------------------------------------------------------
def test_fusable_requires_batchable():
    with pytest.raises(ValueError, match="batchable"):
        PolicyCapabilities(batchable=False, fusable=True)


def test_batchable_requires_kernel():
    with pytest.raises(ValueError, match="batch_kernel"):
        PolicyDescriptor(
            name="Broken",
            policy_class=_ToyPolicy,
            to_config=lambda p: {},
            from_config=lambda c: _ToyPolicy(),
            capabilities=PolicyCapabilities(batchable=True, fusable=False),
        )


def test_kernel_requires_batchable_flag():
    with pytest.raises(ValueError, match="batchable=False"):
        PolicyDescriptor(
            name="Broken",
            policy_class=_ToyPolicy,
            to_config=lambda p: {},
            from_config=lambda c: _ToyPolicy(),
            batch_kernel="repro.sim.batch_kernels:BatchDPKernel",
        )


def test_factory_defaults_to_policy_class():
    descriptor = _toy_descriptor()
    assert descriptor.factory is _ToyPolicy


# ----------------------------------------------------------------------
# MRO resolution
# ----------------------------------------------------------------------
def test_descriptor_for_exact_classes():
    for name in BUILTIN_NAMES:
        descriptor = registry.get(name)
        instance_source = descriptor.factory
        if instance_source is None:  # "DP" needs an explicit bias
            continue
        assert registry.descriptor_for(instance_source()) is descriptor


def test_subclass_resolves_to_nearest_ancestor():
    # EstimatedDBDPPolicy has no descriptor of its own: it inherits
    # DB-DP's batch kernel and cache semantics via the MRO walk.
    descriptor = registry.descriptor_for(EstimatedDBDPPolicy())
    assert descriptor is registry.get("DB-DP")


def test_unregistered_policy_resolves_to_none():
    assert registry.descriptor_for(_ToyPolicy()) is None
    assert registry.policy_config(_ToyPolicy()) is None


def test_policy_label_uses_registered_name_for_exact_class():
    assert registry.policy_label(DBDPPolicy()) == "DB-DP"
    assert registry.policy_label(LDFPolicy()) == "LDF"


def test_policy_label_falls_back_for_subclasses():
    # Subclass variants keep their own reporting name so their sweep
    # curves stay distinguishable from the parent family's.
    assert registry.policy_label(EstimatedDBDPPolicy()) == "DB-DP(est)"


# ----------------------------------------------------------------------
# Config round-trips (every builtin descriptor)
# ----------------------------------------------------------------------
EXEMPLARS = {
    "DB-DP": lambda: DBDPPolicy(glauber_r=5.0, num_pairs=2),
    "DCF": lambda: DCFPolicy(),
    "DP": lambda: DPProtocol(bias=ConstantSwapBias(0.5)),
    "ELDF": lambda: ELDFPolicy(),
    "FCSMA": lambda: FCSMAPolicy(),
    "FrameCSMA": lambda: FrameCSMAPolicy(),
    "LDF": lambda: LDFPolicy(),
    "RoundRobin": lambda: RoundRobinPolicy(),
    "StaticPriority": lambda: StaticPriorityPolicy(
        priorities=list(range(1, 21))[::-1]
    ),
}


@pytest.mark.parametrize("name", BUILTIN_NAMES)
def test_config_round_trip(name):
    descriptor = registry.get(name)
    policy = EXEMPLARS[name]()
    config = descriptor.config_of(policy)
    rebuilt = descriptor.from_config(config)
    assert type(rebuilt) is descriptor.policy_class
    assert descriptor.config_of(rebuilt) == config


@pytest.mark.parametrize("name", BUILTIN_NAMES)
def test_configs_survive_json_via_cache_fingerprint(name):
    import json

    config = registry.get(name).config_of(EXEMPLARS[name]())
    assert json.loads(json.dumps(config)) == config


def test_create_by_name():
    policy = registry.create("DB-DP")
    assert type(policy) is DBDPPolicy


def test_create_rejects_factoryless_family_without_config():
    with pytest.raises(TypeError, match="no default factory"):
        registry.create("DP")


def test_create_with_config():
    config = registry.get("DP").config_of(DPProtocol(bias=ConstantSwapBias(0.25)))
    policy = registry.create("DP", config)
    assert type(policy) is DPProtocol
    assert registry.get("DP").config_of(policy) == config


# ----------------------------------------------------------------------
# Capabilities and kernels
# ----------------------------------------------------------------------
def test_scalar_only_families_declare_no_kernel():
    for name in ("DCF", "FCSMA", "FrameCSMA"):
        descriptor = registry.get(name)
        assert not descriptor.capabilities.batchable
        assert not descriptor.capabilities.fusable
        assert descriptor.batch_kernel is None
        assert not registry.has_kernel(EXEMPLARS[name]())


def test_batchable_families_expose_kernels():
    for name in ("DB-DP", "DP", "ELDF", "LDF", "RoundRobin", "StaticPriority"):
        descriptor = registry.get(name)
        assert descriptor.capabilities.batchable
        assert registry.has_kernel(EXEMPLARS[name]())


def test_make_kernel_rejects_scalar_only_policies():
    with pytest.raises(TypeError, match="no batch kernel"):
        registry.make_kernel(FCSMAPolicy())


def test_kernel_family_shared_within_dp_family():
    assert registry.same_kernel_family(DBDPPolicy(), DPProtocol(bias=ConstantSwapBias(0.5)))
    assert registry.same_kernel_family(LDFPolicy(), ELDFPolicy())
    assert not registry.same_kernel_family(DBDPPolicy(), LDFPolicy())
    assert not registry.same_kernel_family(DBDPPolicy(), FCSMAPolicy())


# ----------------------------------------------------------------------
# resolve_policies
# ----------------------------------------------------------------------
def test_resolve_policies_from_names():
    resolved = registry.resolve_policies(("DB-DP", "LDF"))
    assert resolved == {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}


def test_resolve_policies_mapping_passthrough_and_name_values():
    factory = lambda: DBDPPolicy(glauber_r=5.0)  # noqa: E731
    resolved = registry.resolve_policies({"custom": factory, "baseline": "LDF"})
    assert resolved == {"custom": factory, "baseline": LDFPolicy}


def test_resolve_policies_rejects_factoryless_names():
    with pytest.raises(TypeError, match="no default factory"):
        registry.resolve_policies(("DP",))


def test_resolved_name_factories_are_picklable():
    resolved = registry.resolve_policies(("DB-DP", "LDF", "FCSMA", "DCF"))
    assert pickle.loads(pickle.dumps(resolved)) == resolved
