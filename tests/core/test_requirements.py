"""Tests for NetworkSpec validation and derived quantities."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    BurstyVideoArrivals,
    ConstantArrivals,
    NetworkSpec,
    idealized_timing,
    video_timing,
)


class TestConstruction:
    def test_basic(self, tiny_spec):
        assert tiny_spec.num_links == 3
        np.testing.assert_allclose(tiny_spec.requirement_vector, [1.0] * 3)

    def test_link_count_mismatch_channel(self):
        with pytest.raises(ValueError, match="channel covers"):
            NetworkSpec(
                arrivals=ConstantArrivals.symmetric(3, 1),
                channel=BernoulliChannel.symmetric(2, 0.5),
                timing=idealized_timing(4),
                requirements=(0.5, 0.5, 0.5),
            )

    def test_requirement_count_mismatch(self):
        with pytest.raises(ValueError, match="expected 2 requirements"):
            NetworkSpec(
                arrivals=ConstantArrivals.symmetric(2, 1),
                channel=BernoulliChannel.symmetric(2, 0.5),
                timing=idealized_timing(4),
                requirements=(0.5,),
            )

    def test_requirement_above_arrival_rate_rejected(self):
        """q_n > lambda_n can never be met since S <= A."""
        with pytest.raises(ValueError, match="exceeds arrival rate"):
            NetworkSpec(
                arrivals=BernoulliArrivals.symmetric(2, 0.5),
                channel=BernoulliChannel.symmetric(2, 0.9),
                timing=idealized_timing(4),
                requirements=(0.6, 0.4),
            )

    def test_negative_requirement_rejected(self):
        with pytest.raises(ValueError):
            NetworkSpec(
                arrivals=ConstantArrivals.symmetric(1, 1),
                channel=BernoulliChannel.symmetric(1, 0.9),
                timing=idealized_timing(4),
                requirements=(-0.1,),
            )


class TestFromDeliveryRatios:
    def test_scalar_ratio(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BurstyVideoArrivals.symmetric(4, 0.6),
            channel=BernoulliChannel.symmetric(4, 0.7),
            timing=video_timing(),
            delivery_ratios=0.9,
        )
        # lambda = 3.5 * 0.6 = 2.1; q = 0.9 * 2.1.
        np.testing.assert_allclose(spec.requirement_vector, [1.89] * 4)
        np.testing.assert_allclose(spec.delivery_ratios, [0.9] * 4)

    def test_vector_ratio(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals(rates=(0.5, 1.0)),
            channel=BernoulliChannel.symmetric(2, 0.7),
            timing=idealized_timing(4),
            delivery_ratios=[0.8, 0.6],
        )
        np.testing.assert_allclose(spec.requirement_vector, [0.4, 0.6])

    def test_ratio_above_one_rejected(self):
        with pytest.raises(ValueError):
            NetworkSpec.from_delivery_ratios(
                arrivals=ConstantArrivals.symmetric(1, 1),
                channel=BernoulliChannel.symmetric(1, 1.0),
                timing=idealized_timing(4),
                delivery_ratios=1.1,
            )

    def test_zero_rate_link_gets_zero_ratio(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals(rates=(0.0, 0.5)),
            channel=BernoulliChannel.symmetric(2, 0.7),
            timing=idealized_timing(4),
            delivery_ratios=0.9,
        )
        assert spec.delivery_ratios[0] == 0.0


class TestWorkloadBound:
    def test_matches_hand_computation(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(2, 1),
            channel=BernoulliChannel.symmetric(2, 0.5),
            timing=idealized_timing(10),
            delivery_ratios=1.0,
        )
        # Each link needs 1 / 0.5 = 2 attempts; 4 needed of 10 available.
        assert spec.workload_bound_utilization() == pytest.approx(0.4)

    def test_paper_video_scenario_utilization(self):
        """At alpha* = 0.55 the paper's symmetric network sits below 1."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BurstyVideoArrivals.symmetric(20, 0.55),
            channel=BernoulliChannel.symmetric(20, 0.7),
            timing=video_timing(),
            delivery_ratios=0.9,
        )
        # 20 * 0.9 * 3.5 * 0.55 / 0.7 / 60 = 0.825
        assert spec.workload_bound_utilization() == pytest.approx(0.825, abs=1e-3)
