"""Tests for the round-robin baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    LDFPolicy,
    NetworkSpec,
    RoundRobinPolicy,
    idealized_timing,
    run_simulation,
)


def make_spec(n=4, slots=2, p=1.0):
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(n, 1),
        channel=BernoulliChannel.symmetric(n, p),
        timing=idealized_timing(slots),
        delivery_ratios=0.5,
    )


class TestRotation:
    def test_head_rotates_each_interval(self):
        spec = make_spec(n=4, slots=1)
        result = run_simulation(spec, RoundRobinPolicy(), 8, seed=0)
        # With one slot and perfect channels, interval k serves link k % 4.
        for k in range(8):
            expected = np.zeros(4, dtype=np.int64)
            expected[k % 4] = 1
            np.testing.assert_array_equal(result.deliveries[k], expected)

    def test_long_run_fairness(self):
        spec = make_spec(n=4, slots=2)
        result = run_simulation(spec, RoundRobinPolicy(), 400, seed=1)
        throughput = result.timely_throughput()
        np.testing.assert_allclose(throughput, [0.5] * 4, atol=0.01)

    def test_offset_resets_on_bind(self):
        policy = RoundRobinPolicy()
        spec = make_spec()
        run_simulation(spec, policy, 3, seed=0)
        policy.bind(spec)
        assert policy._offset == 0


class TestDebtObliviousness:
    def test_starves_weak_link_where_ldf_adapts(self):
        """Round-robin alternates the head slot blindly; LDF hands it to
        whoever is behind.  A weak multi-packet link needs the head slot
        most intervals — under RR its debt grows without bound while LDF
        keeps it stable (positive recurrence)."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals(counts=(2, 1, 1)),
            channel=BernoulliChannel(success_probs=(0.4, 1.0, 1.0)),
            timing=idealized_timing(8),
            delivery_ratios=0.9,
        )
        from repro import IntervalSimulator

        rr = IntervalSimulator(spec, RoundRobinPolicy(), seed=2)
        rr.run(3000)
        ldf = IntervalSimulator(spec, LDFPolicy(), seed=2)
        ldf.run(3000)
        # LDF fulfills q with debts pinned near zero; round-robin lets the
        # weak link's debt grow without bound.
        assert ldf.ledger.positive_debts.max() < 10
        assert rr.ledger.positive_debts.max() > 40
        assert ldf.result.total_deficiency() < rr.result.total_deficiency()

    def test_no_collisions_no_overhead(self):
        result = run_simulation(make_spec(), RoundRobinPolicy(), 100, seed=3)
        assert int(result.collisions.sum()) == 0
        assert float(result.overhead_time_us.max()) == 0.0
