"""Tests for the fixed-priority policy (the Fig. 6 setup)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    NetworkSpec,
    StaticPriorityPolicy,
    idealized_timing,
    run_simulation,
)
from repro.traffic.arrivals import BurstyVideoArrivals


def make_spec(n=4, slots=2):
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(n, 1),
        channel=BernoulliChannel.symmetric(n, 1.0),
        timing=idealized_timing(slots),
        delivery_ratios=0.4,
    )


class TestConfiguration:
    def test_identity_default(self):
        policy = StaticPriorityPolicy()
        policy.bind(make_spec())
        assert policy._sigma == (1, 2, 3, 4)

    def test_custom_ordering(self):
        policy = StaticPriorityPolicy(priorities=(4, 3, 2, 1))
        policy.bind(make_spec())
        result = run_simulation(
            make_spec(), StaticPriorityPolicy(priorities=(4, 3, 2, 1)), 50, seed=0
        )
        # Two slots, perfect channels: links 3 and 2 are always served.
        np.testing.assert_array_equal(
            result.timely_throughput(), [0.0, 0.0, 1.0, 1.0]
        )

    def test_invalid_vector_rejected_early(self):
        with pytest.raises(ValueError):
            StaticPriorityPolicy(priorities=(1, 1, 2))

    def test_length_mismatch_at_bind(self):
        policy = StaticPriorityPolicy(priorities=(1, 2, 3))
        with pytest.raises(ValueError):
            policy.bind(make_spec(n=4))


class TestNoStarvationShape:
    def test_throughput_decreases_with_priority_index_but_stays_positive(self):
        """The Fig. 6 claim on a small network: monotone-ish decline, no
        total starvation at the bottom."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BurstyVideoArrivals.symmetric(8, 0.55),
            channel=BernoulliChannel.symmetric(8, 0.7),
            timing=idealized_timing(22),
            delivery_ratios=0.9,
        )
        result = run_simulation(spec, StaticPriorityPolicy(), 2500, seed=1)
        throughput = result.timely_throughput()
        # Top links nearly fully served, bottom visibly below, but nonzero.
        assert throughput[0] > throughput[-1]
        assert throughput[-1] > 0.2
        # The top half should not be starved at all.
        assert throughput[:4].min() > 0.9 * spec.mean_rates[0]
