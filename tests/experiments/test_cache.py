"""Tests for the content-addressed on-disk sweep cache."""

from __future__ import annotations

import math

import pytest

from repro import DBDPPolicy, FCSMAPolicy, LDFPolicy
from repro.experiments.cache import (
    SweepCache,
    engine_version,
    fingerprint,
    policy_fingerprint,
    resolve_cache,
)
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.grid import run_sweep_fused
from repro.experiments.runner import SweepPoint


def spec():
    return video_symmetric_spec(0.5, num_links=4)


def make_point(value=1.25):
    return SweepPoint(
        parameter=float("nan"),
        policy="LDF",
        total_deficiency=value,
        deficiency_std=0.125,
        group_deficiency=(0.75, 0.5),
        collisions=3.0,
        mean_overhead_us=12.5,
    )


class TestKeys:
    def test_key_is_stable(self, tmp_path):
        cache = SweepCache(tmp_path)
        kw = dict(
            spec=spec(), policy=LDFPolicy(), seeds=(0, 1),
            num_intervals=100,
        )
        assert cache.cell_key(**kw) == cache.cell_key(**kw)

    @pytest.mark.parametrize(
        "change",
        [
            dict(spec=video_symmetric_spec(0.6, num_links=4)),
            dict(policy=DBDPPolicy()),
            dict(seeds=(0, 2)),
            dict(num_intervals=101),
            dict(groups=(0, 0, 1, 1)),
            dict(sync_rng=True),
        ],
    )
    def test_any_input_change_changes_key(self, tmp_path, change):
        cache = SweepCache(tmp_path)
        base = dict(
            spec=spec(), policy=LDFPolicy(), seeds=(0, 1),
            num_intervals=100, groups=None, sync_rng=False,
        )
        assert cache.cell_key(**base) != cache.cell_key(**{**base, **change})

    def test_policy_config_changes_key(self, tmp_path):
        cache = SweepCache(tmp_path)
        base = dict(spec=spec(), seeds=(0,), num_intervals=50)
        a = cache.cell_key(policy=FCSMAPolicy(), **base)
        b = cache.cell_key(policy=FCSMAPolicy(window_map=(4, 8, 16)), **base)
        assert a is not None and b is not None and a != b

    def test_unknown_policy_is_uncacheable(self, tmp_path):
        class Mystery:
            name = "mystery"

        cache = SweepCache(tmp_path)
        assert (
            cache.cell_key(
                spec=spec(), policy=Mystery(), seeds=(0,), num_intervals=10
            )
            is None
        )

    def test_engine_version_covers_sources(self):
        v = engine_version()
        assert isinstance(v, str) and len(v) == 16
        assert v == engine_version()  # memoized, stable in-process


class TestRoundTrip:
    def test_miss_then_hit_bit_identical(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.cell_key(
            spec=spec(), policy=LDFPolicy(), seeds=(0,), num_intervals=10
        )
        assert cache.get(key) is None and cache.misses == 1
        point = make_point(value=0.1 + 0.2)  # a float that doesn't round-trip via str()
        cache.put(key, point)
        got = cache.get(key)
        assert cache.hits == 1 and cache.stores == 1
        assert got.total_deficiency == point.total_deficiency
        assert got.deficiency_std == point.deficiency_std
        assert got.group_deficiency == point.group_deficiency
        assert got.collisions == point.collisions
        assert got.mean_overhead_us == point.mean_overhead_us
        assert math.isnan(got.parameter)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.cell_key(
            spec=spec(), policy=LDFPolicy(), seeds=(0,), num_intervals=10
        )
        cache.put(key, make_point())
        path = cache._path(key)
        path.write_text("{not json")
        with pytest.warns(UserWarning, match="corrupt"):
            assert cache.get(key) is None


class TestCorruption:
    """A bad byte on disk must never kill a sweep: corrupt entries are
    quarantined with one warning and count as a miss (regression for the
    crash on truncated/hand-edited cache files)."""

    def entry(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.cell_key(
            spec=spec(), policy=LDFPolicy(), seeds=(0,), num_intervals=10
        )
        cache.put(key, make_point())
        return cache, key, cache._path(key)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda text: text[: len(text) // 2],  # truncated write
            lambda text: "[]",  # not an object
            lambda text: text.replace('"policy"', '"nope"'),  # missing field
            lambda text: text.replace('"LDF"', "42"),  # ill-typed field
            lambda text: text.replace(
                '"total_deficiency":', '"total_deficiency":"NaN-ish",'
                '"x":'
            ),  # non-numeric measurement
        ],
    )
    def test_bad_payload_is_quarantined_miss(self, tmp_path, mutate):
        cache, key, path = self.entry(tmp_path)
        path.write_text(mutate(path.read_text()))
        with pytest.warns(UserWarning, match="quarantined"):
            assert cache.get(key) is None
        assert cache.misses == 1 and cache.quarantined == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_second_get_is_a_plain_miss(self, tmp_path):
        """After quarantine the entry is gone: the next read misses
        silently (no second warning for the same bad file)."""
        cache, key, path = self.entry(tmp_path)
        path.write_text("{truncated")
        with pytest.warns(UserWarning):
            cache.get(key)
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert cache.get(key) is None
        assert cache.misses == 2 and cache.quarantined == 1

    def test_recompute_and_restore_after_quarantine(self, tmp_path):
        """The quarantined cell can be re-stored and then hits again."""
        cache, key, path = self.entry(tmp_path)
        path.write_text("junk")
        with pytest.warns(UserWarning):
            assert cache.get(key) is None
        cache.put(key, make_point(value=2.5))
        got = cache.get(key)
        assert got is not None and got.total_deficiency == 2.5

    def test_schema_mismatch_is_a_silent_miss(self, tmp_path):
        """A different schema number is an old/new writer, not
        corruption: miss without quarantine or warning."""
        cache, key, path = self.entry(tmp_path)
        path.write_text(path.read_text().replace('"schema":1', '"schema":99'))
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert cache.get(key) is None
        assert cache.quarantined == 0
        assert path.exists()  # left in place for the newer writer


class TestResolve:
    def test_none_and_false_disable(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_passthrough_and_path(self, tmp_path):
        store = SweepCache(tmp_path)
        assert resolve_cache(store) is store
        opened = resolve_cache(tmp_path / "sub")
        assert isinstance(opened, SweepCache)

    def test_env_var_off_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        assert resolve_cache(True) is None
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "env"))
        store = resolve_cache(True)
        assert store is not None and store.root == tmp_path / "env"


class TestFingerprint:
    def test_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_known_policies_fingerprint(self):
        for policy in (LDFPolicy(), DBDPPolicy(), FCSMAPolicy()):
            fp = policy_fingerprint(policy)
            assert fp is not None and fp["class"] == type(policy).__qualname__


class TestSweepIntegration:
    def test_warm_rerun_is_bit_identical(self, tmp_path):
        cache = SweepCache(tmp_path)
        kw = dict(
            parameter_name="alpha",
            values=[0.45, 0.6],
            spec_builder=lambda a: video_symmetric_spec(a, num_links=4),
            policies={"LDF": LDFPolicy, "DB-DP": DBDPPolicy},
            num_intervals=80,
            seeds=(0, 1, 2),
        )
        cold = run_sweep_fused(**kw, cache=cache)
        assert cache.stores == 4 and cache.hits == 0
        warm = run_sweep_fused(**kw, cache=cache)
        assert cache.hits == 4 and cache.stores == 4
        assert warm.points == cold.points

    def test_seed_change_misses(self, tmp_path):
        cache = SweepCache(tmp_path)
        kw = dict(
            parameter_name="alpha",
            values=[0.5],
            spec_builder=lambda a: video_symmetric_spec(a, num_links=4),
            policies={"LDF": LDFPolicy},
            num_intervals=40,
        )
        run_sweep_fused(**kw, seeds=(0,), cache=cache)
        run_sweep_fused(**kw, seeds=(1,), cache=cache)
        assert cache.stores == 2 and cache.hits == 0


class TestGoldenKeys:
    """Cache keys must not drift for already-registered policies.

    Keys embed :func:`engine_version` (a hash of the engine sources), so
    the durable contract is the key computed *with that hash pinned*:
    these golden values were recorded on main before the registry
    refactor with ``_engine_version_cache = "0" * 16``.  A mismatch
    means the spec/policy fingerprint encoding changed — which silently
    invalidates (or worse, aliases) every previously stored cell.
    """

    GOLDEN = {
        "dbdp": "cf231f718dce4f3dc5742da1c98de4f6ee964d0551fd077ea58059faaffe8986",
        "ldf": "44a78c5ce657f8a655642c1a34fd8eda549ae913a2210dd3e8a66964f2fe5937",
        "eldf": "9a6a497f8695959faa1e220ca16cb9d288ce1658a296dd2b66c1df58ad3dd228",
        "fcsma": "83bc7d967a5b8997d453603edd4bbd566928167786031e30d1800f35ffc82b87",
        "dcf": "0755447a7d5b0544ce5965705a093c20c027bfc96c8cabff5907a1cb6124e038",
        "frame": "d530907ec759518c887ce58e1b1d38e20a08183184753977113bb483ce53a20d",
        "rr": "6752ad12605bd706b5cb6a69755227e1396d572419c8de2bc819fcb0978a49e1",
        "sp": "8866bf8e298337e43b90eb35ba9130a3c6f944afb45c44ce5cd2b7c7fc8a01ce",
        "sp-rev": "3f82b11b58eb0021fcbc02d427b4d1fb33c2f18c98fcb5398e1ae872b482fae6",
        "dp-const": "a4c5c74a1929a1b0063c9b05ef5d52af31c99352b34965f077f50625baeedd6b",
        "dbdp-r5-p2": "b6a10efe6bf4b949aa8a9e1c2925ec89af4c7897f69b89cdbbbd0c6034a0b6d6",
        "est": "5544d1d7f7184d97fe238cfe2151e21f161ee16b444990460882bc9b7ecb39bc",
        # Channel fingerprints ride in the spec encoding: recorded when
        # the batchable channel layer landed, so key drift here means the
        # channel codec changed shape.
        "dbdp-ge": "5097b706a54f1b184d494f6259ec3baa0a4dd19729a226311ece348731f88551",
        "ldf-tv": "14faee2ebcd736480c717a2b6c6a032a4d01a57dae273ccc0b9a1e401655beb4",
        # Arrival fingerprints ride in the spec encoding the same way:
        # recorded when the batchable arrival-state layer landed, so key
        # drift here means the arrivals codec changed shape.
        "dbdp-mmpp": "07531ae8c9c8338fd73a9befe5279126366e08c18c636235854f79a4420e2601",
        "ldf-pareto": "36a426a9ebf0a3625687559ddc060d1634e9e953041b6df92c15d1bb7b363829",
    }

    @staticmethod
    def _policies():
        from repro import (
            DCFPolicy,
            DPProtocol,
            ConstantSwapBias,
            ELDFPolicy,
            EstimatedDBDPPolicy,
            FrameCSMAPolicy,
            RoundRobinPolicy,
            StaticPriorityPolicy,
        )
        import dataclasses

        from repro import GilbertElliottChannel, NetworkSpec
        from repro.experiments.configs import low_latency_spec
        from repro.phy.channel import TimeVaryingReliability
        from repro.traffic.arrivals import (
            MarkovModulatedArrivals,
            ParetoBurstArrivals,
        )

        video = video_symmetric_spec(0.55, delivery_ratio=0.9)
        ge_video = dataclasses.replace(
            video, channel=GilbertElliottChannel(video.num_links)
        )
        tv_video = dataclasses.replace(
            video,
            channel=TimeVaryingReliability.symmetric(
                video.num_links, 0.8, profile="ramp", period=50, amplitude=0.1
            ),
        )
        mmpp_video = NetworkSpec.from_delivery_ratios(
            arrivals=MarkovModulatedArrivals(
                video.num_links, 0.7, 0.1, 0.8, 0.85, "stationary"
            ),
            channel=video.channel,
            timing=video.timing,
            delivery_ratios=0.9,
        )
        pareto_video = NetworkSpec.from_delivery_ratios(
            arrivals=ParetoBurstArrivals(
                video.num_links, start_prob=0.2, tail=1.5, dur_max=32
            ),
            channel=video.channel,
            timing=video.timing,
            delivery_ratios=0.9,
        )
        return {
            "dbdp": (DBDPPolicy(), video),
            "ldf": (LDFPolicy(), video),
            "eldf": (ELDFPolicy(), video),
            "fcsma": (FCSMAPolicy(), video),
            "dcf": (DCFPolicy(), video),
            "frame": (FrameCSMAPolicy(), video),
            "rr": (RoundRobinPolicy(), video),
            "sp": (StaticPriorityPolicy(), video),
            "sp-rev": (StaticPriorityPolicy(list(range(1, 21))[::-1]), video),
            "dp-const": (DPProtocol(bias=ConstantSwapBias(0.5)), video),
            "dbdp-r5-p2": (
                DBDPPolicy(glauber_r=5.0, num_pairs=2),
                low_latency_spec(0.78),
            ),
            "est": (EstimatedDBDPPolicy(), video),
            "dbdp-ge": (DBDPPolicy(), ge_video),
            "ldf-tv": (LDFPolicy(), tv_video),
            "dbdp-mmpp": (DBDPPolicy(), mmpp_video),
            "ldf-pareto": (LDFPolicy(), pareto_video),
        }

    def test_keys_match_pre_registry_golden_values(self, tmp_path, monkeypatch):
        import repro.experiments.cache as cache_mod

        monkeypatch.setattr(cache_mod, "_engine_version_cache", "0" * 16)
        cache = SweepCache(tmp_path)
        mismatches = {}
        for label, (policy, cell_spec) in self._policies().items():
            key = cache.cell_key(
                spec=cell_spec,
                policy=policy,
                seeds=(0, 1, 2),
                num_intervals=250,
                groups=None,
                sync_rng=True,
            )
            if key != self.GOLDEN[label]:
                mismatches[label] = key
        assert not mismatches
