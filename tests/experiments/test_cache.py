"""Tests for the content-addressed on-disk sweep cache."""

from __future__ import annotations

import math

import pytest

from repro import DBDPPolicy, FCSMAPolicy, LDFPolicy
from repro.experiments.cache import (
    SweepCache,
    engine_version,
    fingerprint,
    policy_fingerprint,
    resolve_cache,
)
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.grid import run_sweep_fused
from repro.experiments.runner import SweepPoint


def spec():
    return video_symmetric_spec(0.5, num_links=4)


def make_point(value=1.25):
    return SweepPoint(
        parameter=float("nan"),
        policy="LDF",
        total_deficiency=value,
        deficiency_std=0.125,
        group_deficiency=(0.75, 0.5),
        collisions=3.0,
        mean_overhead_us=12.5,
    )


class TestKeys:
    def test_key_is_stable(self, tmp_path):
        cache = SweepCache(tmp_path)
        kw = dict(
            spec=spec(), policy=LDFPolicy(), seeds=(0, 1),
            num_intervals=100,
        )
        assert cache.cell_key(**kw) == cache.cell_key(**kw)

    @pytest.mark.parametrize(
        "change",
        [
            dict(spec=video_symmetric_spec(0.6, num_links=4)),
            dict(policy=DBDPPolicy()),
            dict(seeds=(0, 2)),
            dict(num_intervals=101),
            dict(groups=(0, 0, 1, 1)),
            dict(sync_rng=True),
        ],
    )
    def test_any_input_change_changes_key(self, tmp_path, change):
        cache = SweepCache(tmp_path)
        base = dict(
            spec=spec(), policy=LDFPolicy(), seeds=(0, 1),
            num_intervals=100, groups=None, sync_rng=False,
        )
        assert cache.cell_key(**base) != cache.cell_key(**{**base, **change})

    def test_policy_config_changes_key(self, tmp_path):
        cache = SweepCache(tmp_path)
        base = dict(spec=spec(), seeds=(0,), num_intervals=50)
        a = cache.cell_key(policy=FCSMAPolicy(), **base)
        b = cache.cell_key(policy=FCSMAPolicy(window_map=(4, 8, 16)), **base)
        assert a is not None and b is not None and a != b

    def test_unknown_policy_is_uncacheable(self, tmp_path):
        class Mystery:
            name = "mystery"

        cache = SweepCache(tmp_path)
        assert (
            cache.cell_key(
                spec=spec(), policy=Mystery(), seeds=(0,), num_intervals=10
            )
            is None
        )

    def test_engine_version_covers_sources(self):
        v = engine_version()
        assert isinstance(v, str) and len(v) == 16
        assert v == engine_version()  # memoized, stable in-process


class TestRoundTrip:
    def test_miss_then_hit_bit_identical(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.cell_key(
            spec=spec(), policy=LDFPolicy(), seeds=(0,), num_intervals=10
        )
        assert cache.get(key) is None and cache.misses == 1
        point = make_point(value=0.1 + 0.2)  # a float that doesn't round-trip via str()
        cache.put(key, point)
        got = cache.get(key)
        assert cache.hits == 1 and cache.stores == 1
        assert got.total_deficiency == point.total_deficiency
        assert got.deficiency_std == point.deficiency_std
        assert got.group_deficiency == point.group_deficiency
        assert got.collisions == point.collisions
        assert got.mean_overhead_us == point.mean_overhead_us
        assert math.isnan(got.parameter)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cache.cell_key(
            spec=spec(), policy=LDFPolicy(), seeds=(0,), num_intervals=10
        )
        cache.put(key, make_point())
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None


class TestResolve:
    def test_none_and_false_disable(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_passthrough_and_path(self, tmp_path):
        store = SweepCache(tmp_path)
        assert resolve_cache(store) is store
        opened = resolve_cache(tmp_path / "sub")
        assert isinstance(opened, SweepCache)

    def test_env_var_off_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        assert resolve_cache(True) is None
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "env"))
        store = resolve_cache(True)
        assert store is not None and store.root == tmp_path / "env"


class TestFingerprint:
    def test_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_known_policies_fingerprint(self):
        for policy in (LDFPolicy(), DBDPPolicy(), FCSMAPolicy()):
            fp = policy_fingerprint(policy)
            assert fp is not None and fp["class"] == type(policy).__qualname__


class TestSweepIntegration:
    def test_warm_rerun_is_bit_identical(self, tmp_path):
        cache = SweepCache(tmp_path)
        kw = dict(
            parameter_name="alpha",
            values=[0.45, 0.6],
            spec_builder=lambda a: video_symmetric_spec(a, num_links=4),
            policies={"LDF": LDFPolicy, "DB-DP": DBDPPolicy},
            num_intervals=80,
            seeds=(0, 1, 2),
        )
        cold = run_sweep_fused(**kw, cache=cache)
        assert cache.stores == 4 and cache.hits == 0
        warm = run_sweep_fused(**kw, cache=cache)
        assert cache.hits == 4 and cache.stores == 4
        assert warm.points == cold.points

    def test_seed_change_misses(self, tmp_path):
        cache = SweepCache(tmp_path)
        kw = dict(
            parameter_name="alpha",
            values=[0.5],
            spec_builder=lambda a: video_symmetric_spec(a, num_links=4),
            policies={"LDF": LDFPolicy},
            num_intervals=40,
        )
        run_sweep_fused(**kw, seeds=(0,), cache=cache)
        run_sweep_fused(**kw, seeds=(1,), cache=cache)
        assert cache.stores == 2 and cache.hits == 0
