"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments.charts import ascii_chart
from repro.experiments.figures import FigureResult


def sample(series=None):
    return FigureResult(
        figure_id="figX",
        title="chart test",
        x_label="alpha",
        x_values=[0.0, 0.5, 1.0],
        series=series
        or {"A": [0.0, 1.0, 4.0], "B": [4.0, 2.0, 0.0]},
    )


class TestAsciiChart:
    def test_contains_metadata(self):
        text = ascii_chart(sample())
        assert "figX" in text
        assert "x: alpha" in text
        assert "o A" in text and "x B" in text

    def test_grid_dimensions(self):
        text = ascii_chart(sample(), width=40, height=10)
        plot_lines = [l for l in text.splitlines() if "|" in l]
        assert len(plot_lines) == 10
        assert all(len(l.split("|", 1)[1]) == 40 for l in plot_lines)

    def test_axis_labels(self):
        text = ascii_chart(sample())
        assert "4" in text  # y max
        assert "0" in text  # y min / x min
        assert "1" in text  # x max

    def test_curves_reach_their_extremes(self):
        text = ascii_chart(sample(), width=30, height=8)
        lines = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        top, bottom = lines[0], lines[-1]
        # A ends high (top-right), B starts high (top-left).
        assert top.rstrip().endswith("o")
        assert top.lstrip().startswith("x")

    def test_flat_series_handled(self):
        text = ascii_chart(sample(series={"flat": [1.0, 1.0, 1.0]}))
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart(sample(), width=5)
        empty = sample()
        empty.series = {}
        with pytest.raises(ValueError):
            ascii_chart(empty)
        short = sample()
        short.x_values = [1.0]
        short.series = {"A": [1.0]}
        with pytest.raises(ValueError):
            ascii_chart(short)
