"""Tests for the command-line entry point."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig3"])
        assert args.figure == "fig3"
        assert args.seeds == [0]

    def test_rejects_unknown_figure(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(
            ["fig9", "--intervals", "123", "--seeds", "1", "2", "--csv"]
        )
        assert args.intervals == 123
        assert args.seeds == [1, 2]
        assert args.csv


class TestMain:
    def test_runs_one_figure(self, capsys):
        exit_code = main(["fig6", "--intervals", "60"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "priority index" in out

    def test_csv_output(self, capsys):
        main(["fig6", "--intervals", "60", "--csv"])
        out = capsys.readouterr().out
        assert "priority index,StaticPriority" in out

    def test_fig5_uses_scalar_seed(self, capsys):
        exit_code = main(["fig5", "--intervals", "100", "--seeds", "3"])
        assert exit_code == 0
        assert "fig5" in capsys.readouterr().out

    def test_outdir_writes_csv(self, tmp_path, capsys):
        outdir = tmp_path / "csv"
        exit_code = main(
            ["fig6", "--intervals", "60", "--outdir", str(outdir)]
        )
        assert exit_code == 0
        content = (outdir / "fig6.csv").read_text()
        assert content.startswith("priority index,StaticPriority")

    def test_chart_flag(self, capsys):
        main(["fig6", "--intervals", "60", "--chart"])
        out = capsys.readouterr().out
        assert "y: timely-throughput" in out
        assert "+---" in out or "|" in out

    def test_summary_target(self, capsys):
        # Tiny horizon: only checks wiring, not the verdicts themselves.
        main(["summary", "--intervals", "200"])
        out = capsys.readouterr().out
        assert "claim" in out and "holds" in out

    def test_extension_target(self, capsys):
        main(["ext-baselines", "--intervals", "60"])
        out = capsys.readouterr().out
        assert "ext-baselines" in out
