"""Tests for the command-line entry point."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig3"])
        assert args.figure == "fig3"
        assert args.seeds == [0]

    def test_rejects_unknown_figure(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(
            ["fig9", "--intervals", "123", "--seeds", "1", "2", "--csv"]
        )
        assert args.intervals == 123
        assert args.seeds == [1, 2]
        assert args.csv


class TestMain:
    def test_runs_one_figure(self, capsys):
        exit_code = main(["fig6", "--intervals", "60"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "priority index" in out

    def test_csv_output(self, capsys):
        main(["fig6", "--intervals", "60", "--csv"])
        out = capsys.readouterr().out
        assert "priority index,StaticPriority" in out

    def test_fig5_uses_scalar_seed(self, capsys):
        exit_code = main(["fig5", "--intervals", "100", "--seeds", "3"])
        assert exit_code == 0
        assert "fig5" in capsys.readouterr().out

    def test_outdir_writes_csv(self, tmp_path, capsys):
        outdir = tmp_path / "csv"
        exit_code = main(
            ["fig6", "--intervals", "60", "--outdir", str(outdir)]
        )
        assert exit_code == 0
        content = (outdir / "fig6.csv").read_text()
        assert content.startswith("priority index,StaticPriority")

    def test_chart_flag(self, capsys):
        main(["fig6", "--intervals", "60", "--chart"])
        out = capsys.readouterr().out
        assert "y: timely-throughput" in out
        assert "+---" in out or "|" in out

    def test_summary_target(self, capsys):
        # Tiny horizon: only checks wiring, not the verdicts themselves.
        main(["summary", "--intervals", "200"])
        out = capsys.readouterr().out
        assert "claim" in out and "holds" in out

    def test_extension_target(self, capsys):
        main(["ext-baselines", "--intervals", "60"])
        out = capsys.readouterr().out
        assert "ext-baselines" in out


class TestEngineFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fig3", "--engine", "fused", "--rng", "free",
                "--shards", "2", "--backend", "numpy",
            ]
        )
        assert args.engine == "fused"
        assert args.rng == "free"
        assert args.shards == 2
        assert args.backend == "numpy"

    def test_sweep_flags_without_engine_default_to_fused(self, capsys):
        # --rng/--shards/--backend are sweep-engine features; without an
        # explicit --engine they must land on the fused engine instead
        # of erroring on the figures' scalar default.
        argv = [
            "fig3", "--intervals", "40", "--policies", "LDF",
            "--rng", "free", "--shards", "2",
        ]
        assert main(argv) == 0
        assert "fig3" in capsys.readouterr().out


class TestChannelFlag:
    def test_flag_parses(self):
        args = build_parser().parse_args(["fig3", "--channel", "ge:0.1:0.3"])
        assert args.channel == "ge:0.1:0.3"
        assert build_parser().parse_args(["fig3"]).channel is None

    def test_ge_sweep_runs_fused_free(self, capsys):
        argv = [
            "fig3", "--intervals", "40", "--policies", "LDF",
            "--channel", "ge:0.1:0.3", "--rng", "free",
        ]
        assert main(argv) == 0
        assert "fig3" in capsys.readouterr().out

    def test_bad_spec_names_the_kind(self):
        with pytest.raises(ValueError, match="unknown channel kind"):
            main([
                "fig3", "--intervals", "40", "--policies", "LDF",
                "--channel", "rayleigh:0.5",
            ])

    def test_burst_extension_accepts_engine_flags(self, capsys):
        # The inspect-driven kwarg threading: ext-burst-loss is a fused
        # sweep and takes seeds/engine/rng directly from the flags.
        argv = [
            "ext-burst-loss", "--intervals", "60", "--seeds", "0", "1",
            "--rng", "free",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "burstiness" in out


class TestFaultFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fig3", "--resume", "--retries", "3",
                "--cell-timeout", "45.5", "--best-effort",
            ]
        )
        assert args.resume
        assert args.retries == 3
        assert args.cell_timeout == 45.5
        assert args.best_effort

    def test_no_flags_keep_fail_fast(self):
        from repro.experiments.cli import faults_from_args

        args = build_parser().parse_args(["fig3"])
        assert faults_from_args(args) is None

    def test_any_flag_opts_into_fault_policy(self):
        from repro.experiments.cli import faults_from_args
        from repro.experiments.faults import FaultPolicy

        args = build_parser().parse_args(["fig3", "--retries", "5"])
        policy = faults_from_args(args)
        assert isinstance(policy, FaultPolicy)
        assert policy.retries == 5
        assert not policy.best_effort

        args = build_parser().parse_args(
            ["fig3", "--best-effort", "--cell-timeout", "10"]
        )
        policy = faults_from_args(args)
        assert policy.best_effort
        assert policy.cell_timeout == 10.0
        assert policy.retries == FaultPolicy().retries  # default kept

    def test_resume_checkpoints_and_serves_warm(
        self, tmp_path, capsys, monkeypatch
    ):
        """End to end: --resume fills the sweep cache on the first run
        and serves it on the second (REPRO_SWEEP_CACHE points the CLI
        at a temp directory)."""
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweeps"))
        argv = [
            "fig3", "--intervals", "40", "--policies", "LDF", "--resume",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        entries = list((tmp_path / "sweeps").rglob("*.json"))
        assert len(entries) == 7  # one checkpoint per alpha cell
        assert main(argv) == 0
        warm = capsys.readouterr().out
        # Identical table (timing footer differs), from cache this time.
        assert cold.splitlines()[:-2] == warm.splitlines()[:-2]

    def test_best_effort_reports_failed_cells(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:LDF:0.4")
        assert (
            main(
                [
                    "fig3", "--intervals", "40", "--policies", "LDF",
                    "--best-effort", "--retries", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 sweep cell(s) permanently failed" in out
        assert "'LDF'" in out and "InjectedFault" in out
