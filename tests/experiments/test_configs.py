"""Tests for the paper scenario configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.configs import (
    ASYMMETRIC_GROUPS,
    low_latency_spec,
    paper_policies,
    scaled_intervals,
    video_asymmetric_spec,
    video_symmetric_spec,
)


class TestScaledIntervals:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled_intervals(5000) == 5000

    def test_scaling(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.2")
        assert scaled_intervals(5000) == 1000

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert scaled_intervals(5000) == 50

    def test_invalid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(ValueError):
            scaled_intervals(100)
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scaled_intervals(100)


class TestVideoSymmetric:
    def test_paper_parameters(self):
        spec = video_symmetric_spec(0.55)
        assert spec.num_links == 20
        np.testing.assert_allclose(spec.reliabilities, [0.7] * 20)
        np.testing.assert_allclose(spec.mean_rates, [3.5 * 0.55] * 20)
        np.testing.assert_allclose(spec.delivery_ratios, [0.9] * 20)
        assert spec.timing.max_transmissions == 60


class TestVideoAsymmetric:
    def test_group_structure(self):
        spec = video_asymmetric_spec(0.7)
        assert spec.num_links == 20
        np.testing.assert_allclose(spec.reliabilities[:10], [0.5] * 10)
        np.testing.assert_allclose(spec.reliabilities[10:], [0.8] * 10)
        np.testing.assert_allclose(spec.mean_rates[:10], [3.5 * 0.35] * 10)
        np.testing.assert_allclose(spec.mean_rates[10:], [3.5 * 0.7] * 10)
        assert len(ASYMMETRIC_GROUPS) == 20
        assert ASYMMETRIC_GROUPS[0] == 0 and ASYMMETRIC_GROUPS[19] == 1


class TestLowLatency:
    def test_paper_parameters(self):
        spec = low_latency_spec(0.78)
        assert spec.num_links == 10
        assert spec.timing.max_transmissions == 16
        np.testing.assert_allclose(spec.mean_rates, [0.78] * 10)
        np.testing.assert_allclose(
            spec.requirement_vector, [0.78 * 0.99] * 10
        )


class TestPaperPolicies:
    def test_default_three(self):
        policies = paper_policies()
        assert set(policies) == {"DB-DP", "LDF", "FCSMA"}
        # Factories must create fresh instances each call.
        assert policies["LDF"]() is not policies["LDF"]()

    def test_dcf_optional(self):
        assert "DCF" in paper_policies(include_dcf=True)
