"""Tests for the convergence-time study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.convergence_study import (
    convergence_vs_network_size,
    settling_time,
)


class TestSettlingTime:
    def test_immediately_settled(self):
        deliveries = np.ones((50, 2), dtype=int)
        assert settling_time(deliveries, 0, target=1.0) == 0

    def test_settles_after_warmup(self):
        deliveries = np.zeros((300, 1), dtype=int)
        deliveries[30:, 0] = 1
        settle = settling_time(deliveries, 0, target=0.8)
        assert settle is not None and settle > 30

    def test_never_settles(self):
        deliveries = np.zeros((100, 1), dtype=int)
        assert settling_time(deliveries, 0, target=1.0) is None

    def test_overshoot_counts_as_settled(self):
        """Serving above target is fine (the paper's links routinely do)."""
        deliveries = np.full((50, 1), 3, dtype=int)
        assert settling_time(deliveries, 0, target=1.0) == 0


class TestStudy:
    def test_structure_and_ordering(self):
        result = convergence_vs_network_size(
            sizes=(6, 14), num_intervals=1500, seed=0
        )
        assert set(result.series) == {
            "LDF",
            "DB-DP (1 pair)",
            "DB-DP (max pairs)",
        }
        assert result.x_values == [6.0, 14.0]
        for series in result.series.values():
            assert len(series) == 2
            assert all(0 <= v <= 1500 for v in series)

    def test_ldf_no_slower_than_single_pair_dbdp_at_scale(self):
        result = convergence_vs_network_size(
            sizes=(20,), num_intervals=2500, seed=0
        )
        assert (
            result.series["LDF"][0]
            <= result.series["DB-DP (1 pair)"][0]
        )
