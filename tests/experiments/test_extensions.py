"""Tests for the extension studies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.extensions import (
    BURST_GRID,
    MMPP_GRID,
    baseline_panorama,
    burst_loss_robustness,
    correlated_traffic_robustness,
)


class TestBaselinePanorama:
    @pytest.fixture(scope="class")
    def panorama(self):
        return baseline_panorama(num_intervals=400, alpha=0.55, seed=0)

    def test_all_policies_present(self, panorama):
        assert set(panorama.series) == {
            "LDF",
            "DB-DP",
            "FrameCSMA",
            "RoundRobin",
            "FCSMA",
            "DCF",
        }

    def test_collision_free_policies_report_zero_collisions(self, panorama):
        for label in ("LDF", "DB-DP", "FrameCSMA", "RoundRobin"):
            assert panorama.series[label][1] == 0.0, label

    def test_contention_policies_collide(self, panorama):
        for label in ("FCSMA", "DCF"):
            assert panorama.series[label][1] > 0.0, label

    def test_debt_based_policies_lead(self, panorama):
        """LDF and DB-DP have the lowest deficiencies of the panorama."""
        deficiency = {k: v[0] for k, v in panorama.series.items()}
        leaders = sorted(deficiency, key=deficiency.get)[:3]
        assert "LDF" in leaders
        assert "DB-DP" in leaders


class TestBurstLossRobustness:
    def test_structure_and_degradation_direction(self):
        result = burst_loss_robustness(num_intervals=1500, seeds=(1, 2))
        assert set(result.series) == {"DB-DP", "LDF"}
        assert result.x_values == list(BURST_GRID)
        for label, series in result.series.items():
            iid = series[0]
            for bursty in series[1:]:
                # Bursty losses (violating the analyzed model) cannot make
                # things better; some degradation is expected and tolerated.
                assert bursty >= iid - 0.05, label
        # The debt mechanism keeps DB-DP in LDF's neighborhood even under
        # the unmodeled channel.
        for dbdp, ldf in zip(
            result.series["DB-DP"][1:], result.series["LDF"][1:]
        ):
            assert dbdp <= ldf + 1.0

    def test_scalar_engine_matches_structure(self):
        """The legacy scalar path still runs the same grid (and keeps the
        legacy scalar ``seed`` kwarg working)."""
        result = burst_loss_robustness(
            num_intervals=300, seed=1, engine="scalar", burstiness=(0.0, 0.7)
        )
        assert result.x_values == [0.0, 0.7]
        assert set(result.series) == {"DB-DP", "LDF"}

    def test_reference_point_is_iid_bernoulli(self):
        """x = 0 must be the stationary-reliability Bernoulli reduction,
        produced by the channel codec, not a Gilbert-Elliott chain."""
        from repro import BernoulliChannel
        from repro.experiments.extensions import _burst_spec

        spec0 = _burst_spec(0.6, 0.0)
        assert type(spec0.channel) is BernoulliChannel
        np.testing.assert_allclose(spec0.channel.reliabilities, 0.70)
        spec_bursty = _burst_spec(0.6, 0.7)
        # Equal stationary reliability across the grid.
        np.testing.assert_allclose(
            spec_bursty.channel.reliabilities, spec0.channel.reliabilities
        )


class TestCorrelatedTrafficRobustness:
    def test_structure_and_iid_is_benign(self):
        result = correlated_traffic_robustness(num_intervals=1500, seeds=(1, 2))
        assert set(result.series) == {"DB-DP", "LDF"}
        assert result.x_values == list(MMPP_GRID)
        for label, series in result.series.items():
            iid = series[0]
            assert iid >= 0.0
            assert iid < 0.5, label
            for bursty in series[1:]:
                # Bursty traffic (violating the analyzed model) cannot make
                # things better; some degradation is expected and tolerated.
                assert bursty >= iid - 0.05, label

    def test_scalar_engine_matches_structure(self):
        """The legacy scalar path still runs the same grid (and keeps the
        legacy scalar ``seed`` kwarg working)."""
        result = correlated_traffic_robustness(
            num_intervals=300, seed=2, engine="scalar", burstiness=(0.0, 0.7)
        )
        assert result.x_values == [0.0, 0.7]
        assert set(result.series) == {"DB-DP", "LDF"}

    def test_reference_point_is_iid_bernoulli_at_equal_load(self):
        """x = 0 must be the i.i.d. Bernoulli reference, and every grid
        point must carry the same mean load."""
        from repro.traffic.arrivals import BernoulliArrivals
        from repro.experiments.extensions import _mmpp_spec

        spec0 = _mmpp_spec(0.5, 0.0)
        assert type(spec0.arrivals) is BernoulliArrivals
        np.testing.assert_allclose(spec0.arrivals.mean_rates, 0.5)
        spec_bursty = _mmpp_spec(0.5, 0.7)
        np.testing.assert_allclose(
            spec_bursty.arrivals.mean_rates, spec0.arrivals.mean_rates
        )
        # Requirements rebuilt at equal load: identical across the grid.
        np.testing.assert_allclose(
            spec_bursty.requirement_vector, spec0.requirement_vector
        )
