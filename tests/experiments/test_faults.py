"""Tests for the fault-tolerance primitives (repro.experiments.faults)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.faults import (
    ENV_FAULT_INJECT,
    MODE_BEST_EFFORT,
    MODE_STRICT,
    CellFailure,
    FaultPolicy,
    InjectedFault,
    SweepCellError,
    SweepFailureReport,
    call_with_retries,
    clear_fault_injector,
    fire_fault_hooks,
    install_fault_injector,
    nan_point,
    _parse_directives,
)


class TestFaultPolicy:
    def test_defaults_are_strict_with_retries(self):
        policy = FaultPolicy()
        assert policy.retries == 2
        assert policy.mode == MODE_STRICT
        assert not policy.best_effort
        assert policy.cell_timeout is None

    @pytest.mark.parametrize(
        "bad",
        [
            dict(retries=-1),
            dict(cell_timeout=0.0),
            dict(cell_timeout=-1.0),
            dict(backoff_base=-0.1),
            dict(backoff_factor=0.5),
            dict(backoff_max=-1.0),
            dict(mode="yolo"),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            FaultPolicy(**bad)

    def test_backoff_progression_is_capped_exponential(self):
        policy = FaultPolicy(
            backoff_base=1.0, backoff_factor=2.0, backoff_max=5.0
        )
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0
        assert policy.backoff(3) == 4.0
        assert policy.backoff(4) == 5.0  # capped
        assert policy.backoff(10) == 5.0

    def test_zero_base_disables_sleeping(self):
        policy = FaultPolicy(backoff_base=0.0)
        assert policy.backoff(1) == 0.0
        assert policy.backoff(7) == 0.0

    def test_best_effort_property(self):
        assert FaultPolicy(mode=MODE_BEST_EFFORT).best_effort


class TestNanPoint:
    def test_all_measurements_are_nan(self):
        point = nan_point("LDF")
        assert point.policy == "LDF"
        assert math.isnan(point.total_deficiency)
        assert math.isnan(point.deficiency_std)
        assert math.isnan(point.collisions)
        assert math.isnan(point.mean_overhead_us)
        assert point.group_deficiency is None

    def test_groups_get_one_nan_per_group(self):
        point = nan_point("LDF", groups=(0, 0, 1, 1, 2))
        assert len(point.group_deficiency) == 3
        assert all(math.isnan(g) for g in point.group_deficiency)


class TestFailureReport:
    def failure(self, value=0.5, policy="LDF"):
        return CellFailure(
            value=value,
            policy=policy,
            seeds=(0, 1),
            attempts=3,
            error_type="InjectedFault",
            message="boom",
        )

    def test_truthiness_and_len(self):
        assert not SweepFailureReport()
        report = SweepFailureReport([self.failure()])
        assert report and len(report) == 1

    def test_cells_and_summary_name_each_cell(self):
        report = SweepFailureReport(
            [self.failure(0.4, "LDF"), self.failure(0.7, "DB-DP")]
        )
        assert report.cells == [(0.4, "LDF"), (0.7, "DB-DP")]
        text = report.summary()
        assert "2 sweep cell(s)" in text
        assert "0.4" in text and "'LDF'" in text
        assert "0.7" in text and "'DB-DP'" in text
        assert "InjectedFault" in text

    def test_payload_round_trips_through_json(self):
        import json

        report = SweepFailureReport([self.failure()])
        payload = json.loads(json.dumps(report.to_payload()))
        (cell,) = payload["failed_cells"]
        assert cell["policy"] == "LDF"
        assert cell["seeds"] == [0, 1]
        assert cell["attempts"] == 3


class TestSweepCellError:
    def test_names_the_cell(self):
        err = SweepCellError(0.45, "DB-DP", (0, 1, 2), 3, RuntimeError("x"))
        assert err.value == 0.45
        assert err.policy == "DB-DP"
        assert err.seeds == (0, 1, 2)
        assert err.attempts == 3
        msg = str(err)
        assert "0.45" in msg and "DB-DP" in msg and "3 attempt" in msg
        assert "RuntimeError: x" in msg


class TestCallWithRetries:
    def test_first_try_success_never_sleeps(self):
        slept = []
        result = call_with_retries(
            lambda attempt: attempt,
            value=0.5,
            label="LDF",
            seeds=(0,),
            faults=FaultPolicy(),
            failures=[],
            sleep=slept.append,
        )
        assert result == 0 and slept == []

    def test_transient_fault_heals_with_backoff(self):
        slept = []

        def flaky(attempt):
            if attempt < 2:
                raise RuntimeError(f"attempt {attempt}")
            return "ok"

        result = call_with_retries(
            flaky,
            value=0.5,
            label="LDF",
            seeds=(0,),
            faults=FaultPolicy(retries=2, backoff_base=1.0, backoff_factor=2.0),
            failures=[],
            sleep=slept.append,
        )
        assert result == "ok"
        assert slept == [1.0, 2.0]

    def test_permanent_strict_raises_naming_cell(self):
        def always(attempt):
            raise RuntimeError("down")

        with pytest.raises(SweepCellError) as err:
            call_with_retries(
                always,
                value=0.7,
                label="DB-DP",
                seeds=(0, 1),
                faults=FaultPolicy(retries=1, backoff_base=0.0),
                failures=[],
            )
        e = err.value
        assert (e.value, e.policy, e.seeds, e.attempts) == (
            0.7, "DB-DP", (0, 1), 2,
        )
        assert isinstance(e.__cause__, RuntimeError)

    def test_permanent_best_effort_records_and_returns_none(self):
        failures = []

        def always(attempt):
            raise ValueError("bad cell")

        result = call_with_retries(
            always,
            value=0.4,
            label="LDF",
            seeds=(0,),
            faults=FaultPolicy(
                retries=0, backoff_base=0.0, mode=MODE_BEST_EFFORT
            ),
            failures=failures,
        )
        assert result is None
        (failure,) = failures
        assert failure.value == 0.4
        assert failure.policy == "LDF"
        assert failure.attempts == 1
        assert failure.error_type == "ValueError"
        assert failure.message == "bad cell"


class TestDirectiveParsing:
    def test_full_grammar(self):
        (d,) = _parse_directives("raise:LDF:0.4:2")
        assert d.kind == "raise"
        assert d.policy == "LDF"
        assert d.value == 0.4
        assert d.max_attempts == 2

    def test_wildcards_and_omissions(self):
        (d,) = _parse_directives("kill")
        assert d.policy is None and d.value is None and d.max_attempts is None
        (d,) = _parse_directives("hang:*:0.5")
        assert d.policy is None and d.value == 0.5

    def test_semicolons_separate_directives(self):
        a, b = _parse_directives("raise:LDF:0.4; kill:DB-DP")
        assert a.kind == "raise" and b.kind == "kill"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            _parse_directives("explode:LDF:0.4")


class TestFireFaultHooks:
    def test_noop_without_injector_or_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_INJECT, raising=False)
        fire_fault_hooks(0.5, "LDF", 0)  # must not raise

    def test_env_raise_matches_cell(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF:0.4")
        with pytest.raises(InjectedFault, match="LDF"):
            fire_fault_hooks(0.4, "LDF", 0)
        # different policy or value: no fire
        fire_fault_hooks(0.4, "DB-DP", 0)
        fire_fault_hooks(0.5, "LDF", 0)

    def test_max_attempts_stops_transient_fault(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:*:*:2")
        with pytest.raises(InjectedFault):
            fire_fault_hooks(0.5, "LDF", 0)
        with pytest.raises(InjectedFault):
            fire_fault_hooks(0.5, "LDF", 1)
        fire_fault_hooks(0.5, "LDF", 2)  # healed

    def test_installed_injector_fires_and_clears(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_INJECT, raising=False)
        calls = []

        def injector(value, label, attempt):
            calls.append((value, label, attempt))
            raise InjectedFault("from injector")

        previous = install_fault_injector(injector)
        try:
            assert previous is None
            with pytest.raises(InjectedFault):
                fire_fault_hooks(0.6, "DB-DP", 1)
            assert calls == [(0.6, "DB-DP", 1)]
        finally:
            clear_fault_injector()
        fire_fault_hooks(0.6, "DB-DP", 1)  # cleared: no-op
