"""Tests for the figure entry points (reduced horizons)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import (
    ALL_FIGURES,
    fig3,
    fig5,
    fig6,
    fig7,
    fig9,
)


class TestRegistry:
    def test_all_eight_figures_present(self):
        assert set(ALL_FIGURES) == {
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
        }


class TestSweepFigures:
    def test_fig3_structure(self):
        result = fig3(num_intervals=60, alphas=(0.4, 0.7))
        assert result.figure_id == "fig3"
        assert set(result.series) == {"DB-DP", "LDF", "FCSMA"}
        assert result.x_values == [0.4, 0.7]
        assert all(len(s) == 2 for s in result.series.values())
        assert all(v >= 0 for s in result.series.values() for v in s)

    def test_fig7_has_group_series(self):
        result = fig7(num_intervals=60, alphas=(0.7,))
        labels = set(result.series)
        assert "LDF (group 1)" in labels and "LDF (group 2)" in labels
        assert "FCSMA (group 1)" in labels

    def test_fig9_uses_low_latency_grid(self):
        result = fig9(num_intervals=60, lambdas=(0.6, 0.9))
        assert result.x_label == "lambda*"
        assert result.x_values == [0.6, 0.9]

    def test_channel_kwarg_swaps_the_channel(self):
        from repro import GilbertElliottChannel
        from repro.experiments.figures import _with_channel

        result = fig3(
            num_intervals=40,
            alphas=(0.5,),
            policies=("LDF",),
            engine="fused",
            rng="free",
            channel="ge:0.1:0.3",
        )
        assert result.x_values == [0.5]
        # The picklable builder wrap resolves spec strings, channel
        # instances, and spec -> channel callables alike.
        import functools

        from repro.experiments.configs import video_symmetric_spec

        builder = functools.partial(video_symmetric_spec, delivery_ratio=0.9)
        spec = _with_channel(builder, "ge:0.1:0.3", 0.5)
        assert type(spec.channel) is GilbertElliottChannel
        ch = GilbertElliottChannel(spec.num_links)
        assert _with_channel(builder, ch, 0.5).channel is ch
        assert (
            type(
                _with_channel(
                    builder,
                    lambda s: GilbertElliottChannel(s.num_links),
                    0.5,
                ).channel
            )
            is GilbertElliottChannel
        )


class TestSingleRunFigures:
    def test_fig5_running_throughput(self):
        result = fig5(num_intervals=200, sample_every=50)
        assert set(result.series) == {"DB-DP", "LDF"}
        assert len(result.x_values) == 4
        assert result.x_values[0] == 50.0
        # Running throughput is a packets/interval quantity.
        assert all(0 <= v <= 6 for v in result.series["LDF"])
        assert "requirement" in result.notes

    def test_fig6_per_priority_throughput(self):
        result = fig6(num_intervals=300)
        series = result.series["StaticPriority"]
        assert len(series) == 20
        # Top priority markedly better than bottom; bottom non-zero.
        assert series[0] > series[-1]
        assert series[-1] >= 0.0
        top_half = np.mean(series[:10])
        bottom_half = np.mean(series[10:])
        assert top_half > bottom_half

    def test_row_accessor(self):
        result = fig3(num_intervals=50, alphas=(0.5,))
        row = result.row(0.5)
        assert set(row) == {"DB-DP", "LDF", "FCSMA"}
