"""Tests for the grid-fused sweep engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBDPPolicy, FCSMAPolicy, LDFPolicy
from repro.core.policies import IntervalMac as _IntervalMac
from repro.core.policies import IntervalOutcome as _IntervalOutcome
from repro.experiments import grid
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.grid import run_sweep_fused
from repro.experiments.runner import run_sweep


def builder(alpha):
    return video_symmetric_spec(alpha, num_links=4)


BASE = dict(
    parameter_name="alpha",
    values=[0.45, 0.6],
    spec_builder=builder,
    num_intervals=120,
    seeds=(0, 1, 2),
)


class TestSyncExactness:
    def test_sync_rng_matches_scalar_sweep_bitwise(self):
        """With scalar-identical streams the whole fused grid must equal
        the scalar per-cell sweep field-for-field — every row simulates
        the same physics from the same draws, and the aggregation mirrors
        the per-cell float operations."""
        kw = dict(BASE, policies={"LDF": LDFPolicy, "DB-DP": DBDPPolicy})
        fused = run_sweep_fused(**kw, sync_rng=True)
        scalar = run_sweep(**kw, engine="scalar")
        assert fused.points == scalar.points
        assert fused.values == scalar.values

    def test_sync_rng_with_groups(self):
        kw = dict(
            BASE,
            policies={"LDF": LDFPolicy},
            groups=(0, 0, 1, 1),
        )
        fused = run_sweep_fused(**kw, sync_rng=True)
        scalar = run_sweep(**kw, engine="scalar")
        assert fused.points == scalar.points


class TestFallback:
    def test_unfusable_policy_falls_back_per_cell(self):
        """FCSMA has no batch kernel; its cells must reproduce the
        per-cell runner exactly (both routes reach the same scalar
        engine with the same seeds)."""
        kw = dict(BASE, policies={"FCSMA": FCSMAPolicy, "LDF": LDFPolicy})
        fused = run_sweep_fused(**kw)
        per_cell = run_sweep(**kw, engine="batch")
        fused_fcsma = [p for p in fused.points if p.policy == "FCSMA"]
        per_cell_fcsma = [p for p in per_cell.points if p.policy == "FCSMA"]
        assert fused_fcsma == per_cell_fcsma
        # The fused LDF cells are fresh samples, not bit-identical; the
        # sweep must still cover every (value, policy) cell.
        assert len(fused.points) == len(per_cell.points) == 4
        assert fused.series("LDF") and fused.series("FCSMA")

    def test_unstackable_group_degrades_gracefully(self, monkeypatch):
        """If stacking itself fails, the group must fall back to the
        per-cell runner rather than crash or drop cells."""
        monkeypatch.setattr(grid, "_build_fused_sim", lambda *a, **k: None)
        kw = dict(BASE, policies={"LDF": LDFPolicy})
        result = run_sweep_fused(**kw)
        assert len(result.points) == 2
        assert all(p.total_deficiency >= 0 for p in result.points)


class TestLockstepSharing:
    def test_draw_sharing_changes_no_values(self, monkeypatch):
        """Cross-family draw sharing is an optimization only: disabling
        it must leave every sweep point bit-identical."""
        kw = dict(BASE, policies={"LDF": LDFPolicy, "DB-DP": DBDPPolicy})
        shared = run_sweep_fused(**kw)
        monkeypatch.setattr(grid, "share_batch_draws", lambda sims: None)
        unshared = run_sweep_fused(**kw)
        assert shared.points == unshared.points


class TestStatistics:
    def test_default_mode_statistically_close_to_per_cell(self):
        """sync_rng=False rows are fresh samples of the same estimator;
        means must agree within a loose tolerance even at this tiny
        horizon (the tight ensemble check lives in the integration
        suite)."""
        kw = dict(
            BASE,
            policies={"LDF": LDFPolicy},
            num_intervals=300,
            seeds=tuple(range(8)),
        )
        fused = run_sweep_fused(**kw)
        per_cell = run_sweep(**kw, engine="batch")
        for a, b in zip(fused.series("LDF"), per_cell.series("LDF")):
            assert abs(a - b) < max(0.3, 0.5 * b)


class TestValidationArgs:
    def test_bad_intervals_rejected(self):
        with pytest.raises(ValueError, match="num_intervals"):
            run_sweep_fused(
                "alpha", [0.5], builder, {"LDF": LDFPolicy}, 0, seeds=(0,)
            )

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            run_sweep_fused(
                "alpha", [0.5], builder, {"LDF": LDFPolicy}, 10, seeds=()
            )

    def test_engine_fused_routes_through_run_sweep(self):
        kw = dict(BASE, policies={"LDF": LDFPolicy})
        result = run_sweep(**kw, engine="fused")
        assert len(result.points) == 2
        assert result.series("LDF")


class TestScalarOnlyDeclaredFallback:
    """Scalar-only families run through the fused engine by declaration.

    DCF, FCSMA, and Frame-CSMA carry ``fusable=False`` capabilities in
    their registry descriptors; ``run_sweep(engine="fused")`` must route
    each of their cells through the declared per-cell fallback and
    reproduce the per-cell runner exactly.
    """

    @pytest.mark.parametrize("name", ["DCF", "FCSMA", "FrameCSMA"])
    def test_scalar_only_policy_through_fused_engine(self, name):
        kw = dict(BASE, policies=(name,), num_intervals=60, seeds=(0, 1))
        fused = run_sweep(**kw, engine="fused")
        per_cell = run_sweep(**kw, engine="batch")
        assert fused.points == per_cell.points
        assert fused.series(name)

    def test_names_resolve_via_registry(self):
        from repro.core import registry

        kw = dict(BASE, policies=("LDF", "DB-DP"), num_intervals=60)
        by_name = run_sweep_fused(**kw, sync_rng=True)
        by_factory = run_sweep_fused(
            **dict(kw, policies={"LDF": LDFPolicy, "DB-DP": DBDPPolicy}),
            sync_rng=True,
        )
        assert by_name.points == by_factory.points
        assert not registry.get("DCF").capabilities.fusable


class TestUncacheableWarning:
    class _Mystery(_IntervalMac):
        """Unregistered policy: simulable but not fingerprintable.

        Not an LDF subclass — an MRO walk must find no registered
        ancestor, so its cells are uncacheable by construction.
        """

        name = "mystery"

        def run_interval(self, k, arrivals, positive_debts, rng):
            n = self.spec.num_links
            return _IntervalOutcome(
                deliveries=np.zeros(n, dtype=np.int64),
                attempts=np.zeros(n, dtype=np.int64),
                busy_time_us=0.0,
                overhead_time_us=0.0,
                collisions=0,
                priorities=tuple(range(1, n + 1)),
            )

    def test_unregistered_policy_skips_cache_with_one_warning(self, tmp_path):
        kw = dict(
            BASE,
            policies={"mystery": self._Mystery, "LDF": LDFPolicy},
            num_intervals=40,
            seeds=(0,),
        )
        with pytest.warns(UserWarning, match="mystery") as record:
            result = run_sweep_fused(**kw, cache=str(tmp_path))
        cache_warnings = [
            w for w in record if "sweep cache" in str(w.message)
        ]
        # One warning for the whole sweep, not one per cell.
        assert len(cache_warnings) == 1
        # The sweep still completes: every cell present, LDF cells cached.
        assert len(result.points) == 4
        with pytest.warns(UserWarning, match="sweep cache"):
            rerun = run_sweep_fused(**kw, cache=str(tmp_path))
        assert [p for p in rerun.points if p.policy == "LDF"] == [
            p for p in result.points if p.policy == "LDF"
        ]

    def test_registered_policies_warn_nothing(self, tmp_path, recwarn):
        kw = dict(BASE, policies={"LDF": LDFPolicy}, num_intervals=40, seeds=(0,))
        run_sweep_fused(**kw, cache=str(tmp_path))
        assert not [w for w in recwarn if "sweep cache" in str(w.message)]


class TestFusedFaults:
    """FaultPolicy on the fused engine: a fused group fails as a unit."""

    def kwargs(self, **overrides):
        return {
            **BASE,
            **dict(num_intervals=60, seeds=(0, 1)),
            **overrides,
        }

    def test_faults_enabled_changes_no_values(self):
        """With no fault firing, the faults path (sequential groups, no
        lockstep sharing) must be bit-identical to the default path."""
        from repro.experiments.faults import FaultPolicy

        kw = self.kwargs(policies={"LDF": LDFPolicy, "DB-DP": DBDPPolicy})
        plain = run_sweep_fused(**kw)
        guarded = run_sweep_fused(
            **kw, faults=FaultPolicy(backoff_base=0.0)
        )
        for label in ("LDF", "DB-DP"):
            np.testing.assert_array_equal(
                plain.series(label), guarded.series(label)
            )

    def test_transient_fault_heals(self, monkeypatch):
        from repro.experiments.faults import ENV_FAULT_INJECT, FaultPolicy

        kw = self.kwargs(policies={"LDF": LDFPolicy})
        clean = run_sweep_fused(**kw)
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF:*:1")
        result = run_sweep_fused(
            **kw, faults=FaultPolicy(retries=1, backoff_base=0.0)
        )
        np.testing.assert_array_equal(
            result.series("LDF"), clean.series("LDF")
        )
        assert result.failures is None

    def test_permanent_best_effort_nans_the_whole_group(self, monkeypatch):
        """LDF's fused group shares one simulator, so a permanent fault
        in it loses every LDF cell; DB-DP's group is untouched."""
        import math

        from repro.experiments.faults import ENV_FAULT_INJECT, FaultPolicy

        kw = self.kwargs(policies={"LDF": LDFPolicy, "DB-DP": DBDPPolicy})
        clean = run_sweep_fused(**kw)
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF")
        result = run_sweep_fused(
            **kw,
            faults=FaultPolicy(
                retries=0, backoff_base=0.0, mode="best_effort"
            ),
        )
        assert all(math.isnan(x) for x in result.series("LDF"))
        np.testing.assert_array_equal(
            result.series("DB-DP"), clean.series("DB-DP")
        )
        assert sorted(result.failures.cells) == [
            (0.45, "LDF"), (0.6, "LDF"),
        ]

    def test_permanent_strict_raises_naming_a_cell(self, monkeypatch):
        from repro.experiments.faults import (
            ENV_FAULT_INJECT,
            FaultPolicy,
            SweepCellError,
        )

        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF")
        with pytest.raises(SweepCellError) as err:
            run_sweep_fused(
                **self.kwargs(policies={"LDF": LDFPolicy}),
                faults=FaultPolicy(retries=0, backoff_base=0.0),
            )
        assert err.value.policy == "LDF"

    def test_fallback_cells_fail_individually(self, monkeypatch):
        """Scalar-only policies run per cell even under faults, so only
        the targeted (value, policy) cell fails — not a whole group."""
        import math

        from repro.experiments.faults import ENV_FAULT_INJECT, FaultPolicy

        kw = self.kwargs(policies={"FCSMA": FCSMAPolicy})
        clean = run_sweep_fused(**kw)
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:FCSMA:0.45")
        result = run_sweep_fused(
            **kw,
            faults=FaultPolicy(
                retries=0, backoff_base=0.0, mode="best_effort"
            ),
        )
        bad, good = result.series("FCSMA")
        assert math.isnan(bad)
        assert good == clean.series("FCSMA")[1]
        assert result.failures.cells == [(0.45, "FCSMA")]
