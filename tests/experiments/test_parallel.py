"""Tests for the parallel sweep runner."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import DBDPPolicy, LDFPolicy
from repro.experiments.cache import SweepCache
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.faults import (
    ENV_FAULT_INJECT,
    FaultPolicy,
    SweepCellError,
)
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.runner import run_sweep


def small_builder(alpha: float):
    return video_symmetric_spec(alpha, num_links=6)


class TestParallelSweep:
    def test_matches_sequential_exactly(self):
        """Same seeds -> bit-identical deficiencies."""
        kwargs = dict(
            parameter_name="alpha",
            values=[0.4, 0.7],
            spec_builder=small_builder,
            policies={"LDF": LDFPolicy, "DB-DP": DBDPPolicy},
            num_intervals=120,
            seeds=(0, 1),
        )
        sequential = run_sweep(**kwargs)
        parallel = run_sweep_parallel(max_workers=2, **kwargs)
        for label in ("LDF", "DB-DP"):
            np.testing.assert_array_equal(
                sequential.series(label), parallel.series(label)
            )

    def test_group_support(self):
        result = run_sweep_parallel(
            "alpha",
            [0.5],
            small_builder,
            {"LDF": LDFPolicy},
            num_intervals=60,
            seeds=(0,),
            groups=(0, 0, 0, 1, 1, 1),
            max_workers=2,
        )
        assert len(result.group_series("LDF", 0)) == 1

    def test_batch_engine_composes_with_processes(self):
        """engine='batch' inside each worker: statistics must match the
        sequential batch runner (identical seeds -> identical draws)."""
        kwargs = dict(
            parameter_name="alpha",
            values=[0.5],
            spec_builder=small_builder,
            policies={"DB-DP": DBDPPolicy},
            num_intervals=100,
            seeds=(0, 1, 2),
            engine="batch",
        )
        sequential = run_sweep(**kwargs)
        parallel = run_sweep_parallel(max_workers=2, **kwargs)
        np.testing.assert_array_equal(
            sequential.series("DB-DP"), parallel.series("DB-DP")
        )

    def test_fused_engine_warns_and_degrades_to_batch(self):
        """There is no grid to fuse when each worker owns one cell, so
        engine='fused' must warn and produce exactly the batch result."""
        kwargs = dict(
            parameter_name="alpha",
            values=[0.5],
            spec_builder=small_builder,
            policies={"DB-DP": DBDPPolicy},
            num_intervals=80,
            seeds=(0, 1),
            max_workers=2,
        )
        with pytest.warns(UserWarning, match="degrades to per-cell"):
            fused = run_sweep_parallel(engine="fused", **kwargs)
        batch = run_sweep_parallel(engine="batch", **kwargs)
        np.testing.assert_array_equal(
            fused.series("DB-DP"), batch.series("DB-DP")
        )

    def test_points_preserve_all_sweep_point_fields(self):
        """Result assembly uses dataclasses.replace, so every field the
        worker computed must survive into the merged SweepResult."""
        from dataclasses import fields

        kwargs = dict(
            parameter_name="alpha",
            values=[0.4, 0.6],
            spec_builder=small_builder,
            policies={"LDF": LDFPolicy},
            num_intervals=60,
            seeds=(0, 1),
        )
        sequential = run_sweep(**kwargs)
        parallel = run_sweep_parallel(max_workers=2, **kwargs)
        assert len(parallel.points) == len(sequential.points)
        for seq_pt, par_pt in zip(sequential.points, parallel.points):
            for f in fields(seq_pt):
                np.testing.assert_array_equal(
                    getattr(seq_pt, f.name),
                    getattr(par_pt, f.name),
                    err_msg=f"field {f.name!r} lost in parallel assembly",
                )

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep_parallel(
                "x", [1.0], small_builder, {"LDF": LDFPolicy}, 0
            )
        with pytest.raises(ValueError):
            run_sweep_parallel(
                "x", [1.0], small_builder, {"LDF": LDFPolicy}, 10, seeds=()
            )


#: Fast retries for fault tests: no backoff sleeping.
def fast_faults(**overrides):
    return FaultPolicy(**{"backoff_base": 0.0, **overrides})


def small_kwargs(**overrides):
    return {
        **dict(
            parameter_name="alpha",
            values=[0.4, 0.7],
            spec_builder=small_builder,
            policies={"LDF": LDFPolicy},
            num_intervals=60,
            seeds=(0, 1),
        ),
        **overrides,
    }


class TestFaultTolerance:
    """Deterministic fault injection through REPRO_FAULT_INJECT.

    Workers are forked after the env var is set, so the directives reach
    them without extra plumbing; attempt indices are passed down by the
    orchestrator, so 'heal after n attempts' is deterministic.
    """

    def test_transient_worker_exception_heals(self, monkeypatch):
        """An exception on attempt 0 only: retries recover the cell and
        the result is bit-identical to a clean run."""
        kwargs = small_kwargs()
        clean = run_sweep(**kwargs)
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF:0.4:1")
        result = run_sweep_parallel(
            max_workers=2, faults=fast_faults(retries=1), **kwargs
        )
        np.testing.assert_array_equal(
            result.series("LDF"), clean.series("LDF")
        )
        assert result.failures is None

    def test_permanent_exception_strict_names_cell(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF:0.7")
        with pytest.raises(SweepCellError) as err:
            run_sweep_parallel(
                max_workers=2,
                faults=fast_faults(retries=1),
                **small_kwargs(),
            )
        e = err.value
        assert (e.value, e.policy, e.seeds, e.attempts) == (
            0.7, "LDF", (0, 1), 2,
        )
        assert "InjectedFault" in str(e)

    def test_permanent_exception_best_effort_yields_nan_and_report(
        self, monkeypatch
    ):
        kwargs = small_kwargs()
        clean = run_sweep(**kwargs)
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF:0.7")
        result = run_sweep_parallel(
            max_workers=2,
            faults=fast_faults(retries=0, mode="best_effort"),
            **kwargs,
        )
        good, bad = result.series("LDF")
        assert good == clean.series("LDF")[0]
        assert math.isnan(bad)
        report = result.failures
        assert report is not None and report.cells == [(0.7, "LDF")]
        (failure,) = report.failures
        assert failure.attempts == 1
        assert failure.error_type == "InjectedFault"

    def test_worker_kill_recovers_bit_identical(self, monkeypatch):
        """os._exit in a worker breaks the whole pool; the orchestrator
        must respawn it, resubmit, and still match the clean run."""
        kwargs = small_kwargs()
        clean = run_sweep(**kwargs)
        monkeypatch.setenv(ENV_FAULT_INJECT, "kill:LDF:0.4:1")
        result = run_sweep_parallel(
            max_workers=1, faults=fast_faults(retries=2), **kwargs
        )
        np.testing.assert_array_equal(
            result.series("LDF"), clean.series("LDF")
        )
        assert result.failures is None

    def test_worker_kill_permanent_best_effort(self, monkeypatch):
        """A cell that always kills its worker exhausts its retries as
        BrokenProcessPool; best-effort fills it with NaN and keeps the
        healthy cell.  max_workers=1 serializes the cells so the healthy
        one finishes before the killer ever runs."""
        monkeypatch.setenv(ENV_FAULT_INJECT, "kill:LDF:0.7")
        result = run_sweep_parallel(
            max_workers=1,
            faults=fast_faults(retries=1, mode="best_effort"),
            **small_kwargs(),
        )
        good, bad = result.series("LDF")
        assert not math.isnan(good)
        assert math.isnan(bad)
        (failure,) = result.failures.failures
        assert (failure.value, failure.policy) == (0.7, "LDF")
        assert failure.error_type == "BrokenProcessPool"

    def test_cell_timeout_retry_recovers(self, monkeypatch):
        """A hang on attempt 0 only: the timeout expires the cell, the
        pool is respawned to reclaim the worker, and the retry heals."""
        kwargs = small_kwargs(num_intervals=40)
        clean = run_sweep(**kwargs)
        monkeypatch.setenv(ENV_FAULT_INJECT, "hang:LDF:0.7:1")
        result = run_sweep_parallel(
            max_workers=2,
            faults=fast_faults(retries=1, cell_timeout=1.0),
            **kwargs,
        )
        np.testing.assert_array_equal(
            result.series("LDF"), clean.series("LDF")
        )
        assert result.failures is None

    def test_cell_timeout_permanent_best_effort(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "hang:LDF:0.7")
        result = run_sweep_parallel(
            max_workers=1,
            faults=fast_faults(
                retries=0, cell_timeout=0.5, mode="best_effort"
            ),
            **small_kwargs(num_intervals=40),
        )
        good, bad = result.series("LDF")
        assert not math.isnan(good)
        assert math.isnan(bad)
        (failure,) = result.failures.failures
        assert failure.error_type == "TimeoutError"
        assert "cell_timeout" in failure.message


class TestCheckpointResume:
    def test_warm_cells_are_never_submitted(self, tmp_path, monkeypatch):
        """With every cell cached, the sweep must succeed even when any
        submitted cell would kill its worker: warm hits skip the pool."""
        kwargs = small_kwargs()
        cache = SweepCache(tmp_path)
        cold = run_sweep_parallel(max_workers=2, cache=cache, **kwargs)
        assert cache.stores == 2
        monkeypatch.setenv(ENV_FAULT_INJECT, "kill")  # kill *any* cell
        warm = run_sweep_parallel(
            max_workers=2,
            cache=cache,
            faults=fast_faults(retries=0),
            **kwargs,
        )
        assert cache.hits == 2
        np.testing.assert_array_equal(
            warm.series("LDF"), cold.series("LDF")
        )

    def test_kill_at_half_then_resume_is_bit_identical(
        self, tmp_path, monkeypatch
    ):
        """The acceptance scenario: a sweep killed at ~50% must resume
        from the checkpointed cells and finish bit-identical to an
        uninterrupted (and uncached) run."""
        kwargs = small_kwargs(values=[0.4, 0.5, 0.6, 0.7])
        reference = run_sweep(**kwargs)  # sequential, uncached

        cache = SweepCache(tmp_path)
        # max_workers=1 serializes the cells in submission order, so the
        # kill at 0.6 lands after 0.4 and 0.5 were checkpointed.
        monkeypatch.setenv(ENV_FAULT_INJECT, "kill:LDF:0.6")
        with pytest.raises(SweepCellError) as err:
            run_sweep_parallel(
                max_workers=1,
                cache=cache,
                faults=fast_faults(retries=0),
                **kwargs,
            )
        assert err.value.policy == "LDF"
        assert cache.stores == 2  # exactly the first half checkpointed

        monkeypatch.delenv(ENV_FAULT_INJECT)
        resumed = run_sweep_parallel(max_workers=1, cache=cache, **kwargs)
        assert cache.hits == 2  # the checkpointed half came from disk
        assert len(resumed.points) == len(reference.points)
        for ref_pt, res_pt in zip(reference.points, resumed.points):
            assert ref_pt == res_pt  # bit-identical, field by field
