"""Tests for the parallel sweep runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBDPPolicy, LDFPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.parallel import run_sweep_parallel
from repro.experiments.runner import run_sweep


def small_builder(alpha: float):
    return video_symmetric_spec(alpha, num_links=6)


class TestParallelSweep:
    def test_matches_sequential_exactly(self):
        """Same seeds -> bit-identical deficiencies."""
        kwargs = dict(
            parameter_name="alpha",
            values=[0.4, 0.7],
            spec_builder=small_builder,
            policies={"LDF": LDFPolicy, "DB-DP": DBDPPolicy},
            num_intervals=120,
            seeds=(0, 1),
        )
        sequential = run_sweep(**kwargs)
        parallel = run_sweep_parallel(max_workers=2, **kwargs)
        for label in ("LDF", "DB-DP"):
            np.testing.assert_array_equal(
                sequential.series(label), parallel.series(label)
            )

    def test_group_support(self):
        result = run_sweep_parallel(
            "alpha",
            [0.5],
            small_builder,
            {"LDF": LDFPolicy},
            num_intervals=60,
            seeds=(0,),
            groups=(0, 0, 0, 1, 1, 1),
            max_workers=2,
        )
        assert len(result.group_series("LDF", 0)) == 1

    def test_batch_engine_composes_with_processes(self):
        """engine='batch' inside each worker: statistics must match the
        sequential batch runner (identical seeds -> identical draws)."""
        kwargs = dict(
            parameter_name="alpha",
            values=[0.5],
            spec_builder=small_builder,
            policies={"DB-DP": DBDPPolicy},
            num_intervals=100,
            seeds=(0, 1, 2),
            engine="batch",
        )
        sequential = run_sweep(**kwargs)
        parallel = run_sweep_parallel(max_workers=2, **kwargs)
        np.testing.assert_array_equal(
            sequential.series("DB-DP"), parallel.series("DB-DP")
        )

    def test_fused_engine_warns_and_degrades_to_batch(self):
        """There is no grid to fuse when each worker owns one cell, so
        engine='fused' must warn and produce exactly the batch result."""
        kwargs = dict(
            parameter_name="alpha",
            values=[0.5],
            spec_builder=small_builder,
            policies={"DB-DP": DBDPPolicy},
            num_intervals=80,
            seeds=(0, 1),
            max_workers=2,
        )
        with pytest.warns(UserWarning, match="degrades to per-cell"):
            fused = run_sweep_parallel(engine="fused", **kwargs)
        batch = run_sweep_parallel(engine="batch", **kwargs)
        np.testing.assert_array_equal(
            fused.series("DB-DP"), batch.series("DB-DP")
        )

    def test_points_preserve_all_sweep_point_fields(self):
        """Result assembly uses dataclasses.replace, so every field the
        worker computed must survive into the merged SweepResult."""
        from dataclasses import fields

        kwargs = dict(
            parameter_name="alpha",
            values=[0.4, 0.6],
            spec_builder=small_builder,
            policies={"LDF": LDFPolicy},
            num_intervals=60,
            seeds=(0, 1),
        )
        sequential = run_sweep(**kwargs)
        parallel = run_sweep_parallel(max_workers=2, **kwargs)
        assert len(parallel.points) == len(sequential.points)
        for seq_pt, par_pt in zip(sequential.points, parallel.points):
            for f in fields(seq_pt):
                np.testing.assert_array_equal(
                    getattr(seq_pt, f.name),
                    getattr(par_pt, f.name),
                    err_msg=f"field {f.name!r} lost in parallel assembly",
                )

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep_parallel(
                "x", [1.0], small_builder, {"LDF": LDFPolicy}, 0
            )
        with pytest.raises(ValueError):
            run_sweep_parallel(
                "x", [1.0], small_builder, {"LDF": LDFPolicy}, 10, seeds=()
            )
