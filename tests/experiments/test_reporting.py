"""Tests for table / CSV rendering."""

from __future__ import annotations

from repro.experiments.figures import FigureResult
from repro.experiments.reporting import figure_to_csv, format_figure


def sample_result():
    return FigureResult(
        figure_id="figX",
        title="A test figure",
        x_label="alpha",
        x_values=[0.5, 0.7],
        series={"LDF": [0.0, 1.25], "DB-DP": [0.1, 1.5]},
        notes="note line",
    )


class TestFormatFigure:
    def test_contains_all_cells(self):
        text = format_figure(sample_result())
        assert "figX" in text and "A test figure" in text
        assert "note line" in text
        for token in ("alpha", "LDF", "DB-DP", "0.5", "0.7", "1.2500", "1.5000"):
            assert token in text

    def test_alignment_rows_have_equal_width(self):
        lines = [
            line
            for line in format_figure(sample_result()).splitlines()
            if line and not line.startswith(("==", "   "))
        ]
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    def test_precision(self):
        text = format_figure(sample_result(), precision=1)
        assert "1.2" in text and "1.2500" not in text


class TestCsv:
    def test_round_trippable(self):
        csv = figure_to_csv(sample_result())
        lines = csv.strip().splitlines()
        assert lines[0] == "alpha,LDF,DB-DP"
        assert len(lines) == 3
        first_row = lines[1].split(",")
        assert float(first_row[0]) == 0.5
        assert float(first_row[1]) == 0.0
        assert float(first_row[2]) == 0.1
