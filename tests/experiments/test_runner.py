"""Tests for the sweep runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBDPPolicy, FCSMAPolicy, LDFPolicy, StaticPriorityPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.runner import run_single, run_sweep


def tiny_builder(alpha):
    return video_symmetric_spec(alpha, num_links=4)


class TestRunSingle:
    def test_seed_averaging(self):
        spec = tiny_builder(0.5)
        point = run_single(spec, LDFPolicy, 100, seeds=(0, 1, 2))
        assert point.total_deficiency >= 0.0
        assert point.deficiency_std >= 0.0
        assert point.policy == "LDF"

    def test_group_deficiency(self):
        spec = tiny_builder(0.5)
        point = run_single(
            spec, LDFPolicy, 100, seeds=(0,), groups=(0, 0, 1, 1)
        )
        assert point.group_deficiency is not None
        assert len(point.group_deficiency) == 2


class TestBatchEngine:
    def test_batch_point_statistics_match_scalar(self):
        spec = tiny_builder(0.6)
        seeds = tuple(range(10))
        scalar = run_single(spec, DBDPPolicy, 400, seeds=seeds)
        batch = run_single(spec, DBDPPolicy, 400, seeds=seeds, engine="batch")
        assert batch.policy == scalar.policy
        assert batch.total_deficiency == pytest.approx(
            scalar.total_deficiency, abs=0.25
        )
        assert batch.deficiency_std >= 0.0

    def test_batch_group_deficiency(self):
        spec = tiny_builder(0.5)
        point = run_single(
            spec, LDFPolicy, 100, seeds=(0, 1), groups=(0, 0, 1, 1),
            engine="batch",
        )
        assert point.group_deficiency is not None
        assert len(point.group_deficiency) == 2

    def test_unsupported_policy_falls_back_to_scalar(self):
        """FCSMA has no batch kernel: engine='batch' must silently run the
        scalar path and reproduce it exactly (same seeds, same draws)."""
        spec = tiny_builder(0.5)
        scalar = run_single(spec, FCSMAPolicy, 80, seeds=(0, 1))
        fallback = run_single(spec, FCSMAPolicy, 80, seeds=(0, 1), engine="batch")
        # (parameter is NaN in both, so compare the measured fields)
        assert fallback.policy == scalar.policy
        assert fallback.total_deficiency == scalar.total_deficiency
        assert fallback.deficiency_std == scalar.deficiency_std
        assert fallback.collisions == scalar.collisions
        assert fallback.mean_overhead_us == scalar.mean_overhead_us

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            run_single(tiny_builder(0.5), LDFPolicy, 10, seeds=(0,), engine="gpu")

    def test_sweep_accepts_engine(self):
        sweep = run_sweep(
            "alpha",
            [0.4, 0.7],
            tiny_builder,
            {"LDF": LDFPolicy},
            num_intervals=60,
            seeds=(0, 1),
            engine="batch",
        )
        assert len(sweep.points) == 2
        assert all(p.total_deficiency >= 0.0 for p in sweep.points)


class TestRunSweep:
    def test_structure(self):
        sweep = run_sweep(
            "alpha",
            [0.3, 0.6],
            tiny_builder,
            {"LDF": LDFPolicy, "Static": StaticPriorityPolicy},
            num_intervals=80,
            seeds=(0,),
        )
        assert sweep.values == [0.3, 0.6]
        assert sweep.policies == ["LDF", "Static"]
        assert len(sweep.points) == 4
        assert len(sweep.series("LDF")) == 2

    def test_deficiency_monotone_in_load_for_ldf(self):
        """Sanity: higher load cannot decrease deficiency much."""
        sweep = run_sweep(
            "alpha",
            [0.3, 0.95],
            tiny_builder,
            {"LDF": LDFPolicy},
            num_intervals=400,
            seeds=(0,),
        )
        series = sweep.series("LDF")
        assert series[1] >= series[0] - 0.05

    def test_group_series(self):
        sweep = run_sweep(
            "alpha",
            [0.5],
            tiny_builder,
            {"LDF": LDFPolicy},
            num_intervals=50,
            seeds=(0,),
            groups=(0, 1, 1, 1),
        )
        assert len(sweep.group_series("LDF", 0)) == 1
        assert len(sweep.group_series("LDF", 1)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep("x", [1.0], tiny_builder, {"LDF": LDFPolicy}, 0)
        with pytest.raises(ValueError):
            run_sweep(
                "x", [1.0], tiny_builder, {"LDF": LDFPolicy}, 10, seeds=()
            )


class TestSeriesErrors:
    """`series`/`group_series` must fail loudly, naming what's missing."""

    def _sweep(self, **kw):
        return run_sweep(
            "alpha", [0.4, 0.6], tiny_builder, {"LDF": LDFPolicy},
            num_intervals=40, seeds=(0,), **kw,
        )

    def test_unknown_policy_names_policy_and_values(self):
        sweep = self._sweep()
        with pytest.raises(KeyError) as exc:
            sweep.series("DB-DP")
        message = str(exc.value)
        assert "DB-DP" in message
        assert "0.4" in message and "0.6" in message
        assert "LDF" in message  # lists the policies that are present

    def test_partial_coverage_names_missing_values_only(self):
        sweep = self._sweep()
        del sweep.points[1]  # drop the 0.6 cell
        with pytest.raises(KeyError) as exc:
            sweep.series("LDF")
        message = str(exc.value)
        assert "0.6" in message and "0.4" not in message

    def test_group_series_without_group_data_raises(self):
        sweep = self._sweep()  # no groups recorded
        with pytest.raises(KeyError, match="LDF"):
            sweep.group_series("LDF", 0)


class TestRunSweepCacheAndFaults:
    """Checkpoint/resume and the FaultPolicy path on the sequential runner."""

    def kwargs(self, **overrides):
        return {
            **dict(
                parameter_name="alpha",
                values=[0.4, 0.6],
                spec_builder=tiny_builder,
                policies={"LDF": LDFPolicy},
                num_intervals=40,
                seeds=(0, 1),
            ),
            **overrides,
        }

    def test_cold_then_warm_is_bit_identical(self, tmp_path):
        from repro.experiments.cache import SweepCache

        cache = SweepCache(tmp_path)
        cold = run_sweep(cache=cache, **self.kwargs())
        assert cache.stores == 2 and cache.hits == 0
        warm = run_sweep(cache=cache, **self.kwargs())
        assert cache.hits == 2
        assert warm.points == cold.points

    def test_transient_fault_heals(self, monkeypatch):
        from repro.experiments.faults import ENV_FAULT_INJECT, FaultPolicy

        clean = run_sweep(**self.kwargs())
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF:0.4:1")
        result = run_sweep(
            faults=FaultPolicy(retries=1, backoff_base=0.0), **self.kwargs()
        )
        np.testing.assert_array_equal(
            result.series("LDF"), clean.series("LDF")
        )
        assert result.failures is None

    def test_permanent_strict_raises_naming_cell(self, monkeypatch):
        from repro.experiments.faults import (
            ENV_FAULT_INJECT,
            FaultPolicy,
            SweepCellError,
        )

        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF:0.6")
        with pytest.raises(SweepCellError) as err:
            run_sweep(
                faults=FaultPolicy(retries=0, backoff_base=0.0),
                **self.kwargs(),
            )
        assert (err.value.value, err.value.policy) == (0.6, "LDF")

    def test_permanent_best_effort_yields_nan_and_report(self, monkeypatch):
        import math

        from repro.experiments.faults import ENV_FAULT_INJECT, FaultPolicy

        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF:0.6")
        result = run_sweep(
            faults=FaultPolicy(
                retries=0, backoff_base=0.0, mode="best_effort"
            ),
            **self.kwargs(),
        )
        good, bad = result.series("LDF")
        assert not math.isnan(good) and math.isnan(bad)
        assert result.failures.cells == [(0.6, "LDF")]

    def test_failed_cells_are_not_checkpointed(self, tmp_path, monkeypatch):
        """A NaN best-effort point must never be stored: once the fault
        clears, the cell recomputes instead of hitting a poisoned entry."""
        from repro.experiments.cache import SweepCache
        from repro.experiments.faults import ENV_FAULT_INJECT, FaultPolicy

        cache = SweepCache(tmp_path)
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:LDF:0.6")
        run_sweep(
            cache=cache,
            faults=FaultPolicy(
                retries=0, backoff_base=0.0, mode="best_effort"
            ),
            **self.kwargs(),
        )
        assert cache.stores == 1  # only the healthy cell
        monkeypatch.delenv(ENV_FAULT_INJECT)
        healed = run_sweep(cache=cache, **self.kwargs())
        assert healed.failures is None
        assert cache.stores == 2 and cache.hits == 1
        reference = run_sweep(**self.kwargs())
        assert healed.points == reference.points
