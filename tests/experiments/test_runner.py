"""Tests for the sweep runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LDFPolicy, StaticPriorityPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.runner import run_single, run_sweep


def tiny_builder(alpha):
    return video_symmetric_spec(alpha, num_links=4)


class TestRunSingle:
    def test_seed_averaging(self):
        spec = tiny_builder(0.5)
        point = run_single(spec, LDFPolicy, 100, seeds=(0, 1, 2))
        assert point.total_deficiency >= 0.0
        assert point.deficiency_std >= 0.0
        assert point.policy == "LDF"

    def test_group_deficiency(self):
        spec = tiny_builder(0.5)
        point = run_single(
            spec, LDFPolicy, 100, seeds=(0,), groups=(0, 0, 1, 1)
        )
        assert point.group_deficiency is not None
        assert len(point.group_deficiency) == 2


class TestRunSweep:
    def test_structure(self):
        sweep = run_sweep(
            "alpha",
            [0.3, 0.6],
            tiny_builder,
            {"LDF": LDFPolicy, "Static": StaticPriorityPolicy},
            num_intervals=80,
            seeds=(0,),
        )
        assert sweep.values == [0.3, 0.6]
        assert sweep.policies == ["LDF", "Static"]
        assert len(sweep.points) == 4
        assert len(sweep.series("LDF")) == 2

    def test_deficiency_monotone_in_load_for_ldf(self):
        """Sanity: higher load cannot decrease deficiency much."""
        sweep = run_sweep(
            "alpha",
            [0.3, 0.95],
            tiny_builder,
            {"LDF": LDFPolicy},
            num_intervals=400,
            seeds=(0,),
        )
        series = sweep.series("LDF")
        assert series[1] >= series[0] - 0.05

    def test_group_series(self):
        sweep = run_sweep(
            "alpha",
            [0.5],
            tiny_builder,
            {"LDF": LDFPolicy},
            num_intervals=50,
            seeds=(0,),
            groups=(0, 1, 1, 1),
        )
        assert len(sweep.group_series("LDF", 0)) == 1
        assert len(sweep.group_series("LDF", 1)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep("x", [1.0], tiny_builder, {"LDF": LDFPolicy}, 0)
        with pytest.raises(ValueError):
            run_sweep(
                "x", [1.0], tiny_builder, {"LDF": LDFPolicy}, 10, seeds=()
            )
