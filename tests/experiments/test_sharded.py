"""Sharded fused sweeps: determinism, fault recovery, cache resume.

The sharding contract: results are a pure function of (sweep definition,
seeds, shard count).  Shard membership is a contiguous split of the full
cell list and each shard draws from its own ``fused/shard{i}of{K}``
stream namespace, so

* the same shard count is bit-identical across reruns, worker kills,
  cache resumes, and pooled-vs-in-process execution;
* different shard counts are independent samples of the same estimator
  (statistically equivalent, asserted with the joint confidence bound of
  ``test_fused_statistical.py``);
* ``sync_rng=True`` ignores stream tags entirely, so sharded sync runs
  are bit-identical to unsharded ones.
"""

from __future__ import annotations

import math
import os

import pytest

from repro import DBDPPolicy, LDFPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.faults import ENV_FAULT_INJECT, FaultPolicy, SweepCellError
from repro.experiments.grid import run_sweep_fused
from repro.experiments.runner import run_sweep

VALUES = (0.5, 0.55, 0.6, 0.65)
POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}
SEEDS = (0, 1)
INTERVALS = 100


def _totals(result):
    return [p.total_deficiency for p in result.points]


def _sweep(**overrides):
    kw = dict(
        parameter_name="alpha",
        values=VALUES,
        spec_builder=video_symmetric_spec,
        policies=POLICIES,
        num_intervals=INTERVALS,
        seeds=SEEDS,
    )
    kw.update(overrides)
    return run_sweep_fused(**kw)


class TestShardDeterminism:
    def test_same_shard_count_is_bit_identical(self):
        assert _sweep(shards=2).points == _sweep(shards=2).points

    def test_different_shard_counts_differ(self):
        # Different splits draw from different stream namespaces; both
        # are valid samples but they are not the same sample.
        assert _totals(_sweep(shards=2)) != _totals(_sweep(shards=3))

    def test_shards_one_equals_unsharded(self):
        assert _sweep(shards=1).points == _sweep().points

    def test_sync_rng_sharding_is_bit_identical_to_unsharded(self):
        assert (
            _sweep(shards=2, sync_rng=True).points
            == _sweep(sync_rng=True).points
        )

    def test_in_process_fallback_matches_pooled(self):
        # A lambda builder cannot be pickled into pool workers; the
        # sharded path must warn and fall back to in-process execution
        # with identical results (draws depend only on the shard count).
        pooled = _sweep(shards=2)
        with pytest.warns(UserWarning, match="not picklable"):
            local = _sweep(
                shards=2,
                spec_builder=lambda a: video_symmetric_spec(a),
            )
        assert local.points == pooled.points

    def test_shards_require_fused_engine(self):
        with pytest.raises(ValueError, match="requires engine='fused'"):
            run_sweep(
                "alpha", VALUES, video_symmetric_spec, POLICIES, INTERVALS,
                SEEDS, engine="batch", shards=2,
            )

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            _sweep(shards=0)


class TestShardStatisticalEquivalence:
    """Shard-count invariance of the estimator, CI-bounded per cell."""

    SEEDS = tuple(range(24))
    VALUES = (0.5, 0.65)

    @pytest.fixture(scope="class")
    def sweeps(self):
        kw = dict(
            parameter_name="alpha",
            values=self.VALUES,
            spec_builder=video_symmetric_spec,
            policies=POLICIES,
            num_intervals=400,
            seeds=self.SEEDS,
        )
        return run_sweep_fused(**kw), run_sweep_fused(**kw, shards=3)

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("value", (0.5, 0.65))
    def test_means_within_joint_confidence_bound(self, sweeps, policy, value):
        unsharded, sharded = sweeps
        (u,) = [
            p for p in unsharded.points
            if p.policy == policy and p.parameter == value
        ]
        (s,) = [
            p for p in sharded.points
            if p.policy == policy and p.parameter == value
        ]
        n = len(self.SEEDS)
        se = math.sqrt(
            (u.deficiency_std**2 + s.deficiency_std**2) / max(n - 1, 1)
        )
        tol = 3.0 * se + 0.02
        assert abs(u.total_deficiency - s.total_deficiency) <= tol, (
            f"{policy}@{u.parameter}: unsharded {u.total_deficiency:.4f} "
            f"vs 3-sharded {s.total_deficiency:.4f} (tol {tol:.4f})"
        )


class TestShardFaultRecovery:
    def test_worker_kill_retries_and_recovers(self, monkeypatch):
        # Kill the worker running DB-DP@0.65 on its first attempt only;
        # the orchestrator observes the broken pool, respawns it, and the
        # retry produces a result identical to a fault-free run.
        reference = _sweep(shards=2)
        monkeypatch.setenv(ENV_FAULT_INJECT, "kill:DB-DP:0.65:1")
        recovered = _sweep(
            shards=2, faults=FaultPolicy(retries=1, backoff_base=0.0)
        )
        assert recovered.points == reference.points

    def test_permanent_kill_is_strict_by_default(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "kill:DB-DP:0.65:*")
        with pytest.raises(SweepCellError, match="shard"):
            _sweep(shards=2, faults=FaultPolicy(retries=1, backoff_base=0.0))

    def test_permanent_failure_best_effort_nans_whole_shard(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_INJECT, "raise:DB-DP:0.65:*")
        result = _sweep(
            shards=2,
            faults=FaultPolicy(retries=0, backoff_base=0.0,
                               mode="best_effort"),
        )
        # The failing cell's whole shard is NaN-filled and every member
        # is named in the failure report.
        assert result.failures is not None
        failed = {(f.value, f.policy) for f in result.failures.failures}
        assert (0.65, "DB-DP") in failed
        nan_cells = [
            (p.parameter, p.policy)
            for p in result.points
            if math.isnan(p.total_deficiency)
        ]
        assert set(nan_cells) == failed
        # Cells of the healthy shard are real measurements.
        healthy = [
            p for p in result.points
            if (p.parameter, p.policy) not in failed
        ]
        assert healthy and all(
            not math.isnan(p.total_deficiency) for p in healthy
        )

    def test_kill_mid_sweep_resumes_through_cache(self, monkeypatch, tmp_path):
        reference = _sweep(shards=2)
        cache_dir = str(tmp_path / "cache")
        # Run 1: the second shard's worker dies on every attempt; the
        # first shard's cells are checkpointed before the sweep aborts.
        monkeypatch.setenv(ENV_FAULT_INJECT, "kill:DB-DP:0.65:*")
        with pytest.raises(SweepCellError):
            _sweep(
                shards=2, cache=cache_dir,
                faults=FaultPolicy(retries=0, backoff_base=0.0),
            )
        checkpointed = len(os.listdir(cache_dir))
        assert checkpointed == len(VALUES) * len(POLICIES) // 2
        # Run 2: the fault directive no longer fires; only the cold
        # shard is recomputed (same stream tag), and the assembled sweep
        # is bit-identical to an uninterrupted fault-free run.
        monkeypatch.delenv(ENV_FAULT_INJECT)
        resumed = _sweep(shards=2, cache=cache_dir)
        assert resumed.points == reference.points

    def test_warm_cache_skips_all_shards(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = _sweep(shards=2, cache=cache_dir)
        again = _sweep(shards=2, cache=cache_dir)
        assert again.points == first.points
