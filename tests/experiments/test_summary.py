"""Tests for the programmatic paper-claims summary."""

from __future__ import annotations

import pytest

from repro.experiments.summary import (
    ClaimVerdict,
    evaluate_paper_claims,
    format_verdicts,
)


@pytest.fixture(scope="module")
def verdicts():
    # Short horizon: structure and the horizon-robust claims are asserted;
    # the DB-DP boundary-ratio claim needs the paper horizon to hold and is
    # exempted below (its short-horizon "NO" is the documented warm-up
    # effect, see EXPERIMENTS.md).
    return evaluate_paper_claims(num_intervals=700, seed=0)


class TestEvaluate:
    def test_all_claims_present(self, verdicts):
        claims = [v.claim for v in verdicts]
        assert len(claims) == 8
        assert any("admissible" in c for c in claims)
        assert any("FCSMA" in c for c in claims)
        assert any("collision-free" in c for c in claims)

    def test_horizon_robust_claims_hold(self, verdicts):
        robust = [
            "LDF admissible alpha* (Fig. 3 boundary)",
            "FCSMA supports only ~70% of LDF's load",
            "DB-DP overhead <= (N+1) slots + 2 empty packets",
            "DB-DP loses 1-2 transmissions per interval",
            "DP protocol is collision-free",
            "DB-DP ~ LDF at the 2 ms deadline (lambda* = 0.78)",
            "lowest fixed priority still served (Fig. 6)",
        ]
        by_claim = {v.claim: v for v in verdicts}
        for claim in robust:
            assert by_claim[claim].holds, by_claim[claim]

    def test_measured_strings_populated(self, verdicts):
        for v in verdicts:
            assert v.measured and v.paper


class TestFormat:
    def test_table_contains_every_claim(self, verdicts):
        text = format_verdicts(verdicts)
        for v in verdicts:
            assert v.claim in text
        assert "holds" in text

    def test_no_marker_rendered(self):
        text = format_verdicts(
            [ClaimVerdict("c", "p", "m", False), ClaimVerdict("d", "p", "m", True)]
        )
        assert "NO" in text and "yes" in text
