"""The ``topology=`` plumbing through the experiment runners and CLI."""

import warnings

import numpy as np
import pytest

from repro import DBDPPolicy
from repro.experiments.cache import SweepCache
from repro.experiments.cli import build_parser, main
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.runner import run_single, run_sweep
from repro.sim.batch_sim import run_simulation_batch
from repro.topology import TopologyResult, grid_cells

SEEDS = (0, 1)
INTERVALS = 40
VALUES = (0.5, 0.55)


def _spec(alpha):
    return video_symmetric_spec(alpha, num_links=12)


def _builder(spec):
    return grid_cells(spec.num_links, 3, 0.5)


def _sweep(engine, **kwargs):
    return run_sweep(
        "alpha*", VALUES, _spec, ["DB-DP", "FCSMA"], INTERVALS,
        seeds=SEEDS, engine=engine, topology=_builder, **kwargs,
    )


class TestRunnerPlumbing:
    def test_batch_and_fused_agree(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            batch = _sweep("batch")
            fused = _sweep("fused")
        assert [p.policy for p in batch.points] == [
            p.policy for p in fused.points
        ]
        for a, b in zip(batch.points, fused.points):
            assert a.total_deficiency == b.total_deficiency

    def test_non_capable_family_degrades_with_one_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = _sweep("batch")
        topo_warnings = [
            w for w in caught if "supports_topology" in str(w.message)
        ]
        assert len(topo_warnings) == 1
        assert "FCSMA" in str(topo_warnings[0].message)
        # The degraded cells still produce finite points.
        fcsma = [p for p in result.points if p.policy == "FCSMA"]
        assert all(np.isfinite(p.total_deficiency) for p in fcsma)

    def test_degraded_cells_match_topology_free_sweep(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            with_topo = _sweep("batch")
        plain = run_sweep(
            "alpha*", VALUES, _spec, ["FCSMA"], INTERVALS,
            seeds=SEEDS, engine="batch",
        )
        got = {
            p.parameter: p.total_deficiency
            for p in with_topo.points
            if p.policy == "FCSMA"
        }
        for p in plain.points:
            assert got[p.parameter] == p.total_deficiency

    def test_scalar_engine_rejects_topology(self):
        with pytest.raises(ValueError, match="topology="):
            run_sweep(
                "alpha*", VALUES, _spec, ["DB-DP"], INTERVALS,
                seeds=SEEDS, engine="scalar", topology=_builder,
            )
        with pytest.raises(ValueError, match="topology="):
            run_single(
                _spec(0.5), DBDPPolicy, INTERVALS, SEEDS,
                engine="scalar", topology=_builder,
            )

    def test_topology_num_links_mismatch_rejected(self):
        with pytest.raises(ValueError, match="topology covers"):
            run_single(
                _spec(0.5), DBDPPolicy, INTERVALS, SEEDS,
                engine="batch", topology=grid_cells(8, 2),
            )


class TestCacheKeys:
    def test_topology_keys_are_distinct(self, tmp_path):
        store = SweepCache(tmp_path)
        common = dict(
            spec=_spec(0.5),
            policy=DBDPPolicy(),
            seeds=SEEDS,
            num_intervals=INTERVALS,
        )
        plain = store.cell_key(**common)
        topo = store.cell_key(**common, topology=grid_cells(12, 3))
        other = store.cell_key(**common, topology=grid_cells(12, 3, 0.5))
        assert plain != topo
        assert topo != other
        # None omits the field: pre-existing keys preserved.
        assert store.cell_key(**common, topology=None) == plain

    def test_cold_warm_resume_identical(self, tmp_path):
        kwargs = dict(seeds=SEEDS, engine="fused", cache=str(tmp_path))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            cold = run_sweep(
                "alpha*", VALUES, _spec, ["DB-DP"], INTERVALS,
                topology=_builder, **kwargs,
            )
            warm = run_sweep(
                "alpha*", VALUES, _spec, ["DB-DP"], INTERVALS,
                topology=_builder, **kwargs,
            )
        for a, b in zip(cold.points, warm.points):
            assert a.total_deficiency == b.total_deficiency
            assert a.deficiency_std == b.deficiency_std
            assert a.mean_overhead_us == b.mean_overhead_us


class TestBatchEntryPoint:
    def test_run_simulation_batch_returns_topology_result(self):
        result = run_simulation_batch(
            _spec(0.5), DBDPPolicy(), INTERVALS, SEEDS,
            topology=grid_cells(12, 3, 0.5),
        )
        assert isinstance(result, TopologyResult)
        assert result.delivery_sums.shape == (len(SEEDS), 12)

    def test_direct_call_is_strict_for_non_capable_families(self):
        from repro.core import registry

        factory = registry.resolve_policies(["FCSMA"])["FCSMA"]
        with pytest.raises(TypeError, match="supports_topology"):
            run_simulation_batch(
                _spec(0.5), factory(), INTERVALS, SEEDS,
                topology=grid_cells(12, 3),
            )

    def test_record_priorities_incompatible(self):
        with pytest.raises(ValueError, match="record_priorities"):
            run_simulation_batch(
                _spec(0.5), DBDPPolicy(), INTERVALS, SEEDS,
                record_priorities=True, topology=grid_cells(12, 3),
            )


class TestCli:
    def test_parser_accepts_cell_flags(self):
        args = build_parser().parse_args(
            ["fig3", "--cells", "4", "--cross-cell-fraction", "0.1"]
        )
        assert args.cells == 4
        assert args.cross_cell_fraction == 0.1

    def test_fraction_requires_cells(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3", "--cross-cell-fraction", "0.1"])
        assert "--cells" in capsys.readouterr().err

    def test_cells_flag_runs_a_figure(self, capsys):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            code = main(
                ["fig3", "--cells", "4", "--intervals", "20",
                 "--seeds", "0"]
            )
        assert code == 0
        assert "alpha*" in capsys.readouterr().out
