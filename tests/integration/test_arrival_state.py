"""Cross-engine equivalence and state hygiene for stateful arrivals.

Mirrors ``test_channel_equivalence.py`` for the traffic plane:

* **State-leak regression** — a :class:`MarkovModulatedArrivals`
  instance shared across consecutive runs must produce bit-identical
  results for the same seed: every engine resets arrival state at
  construction instead of resuming the previous run's chain.
* **Statistical equivalence** — MMPP and Pareto-burst traffic under the
  fused engine with ``rng="free"`` is a *fresh sample* of the same
  estimator as the scalar engine; per-cell means must agree within a
  joint 3-sigma confidence bound.
* **Backend identity** — the numpy and jit batch backends consume the
  identical arrival-state planes (bit-identical sweeps), and
  ``sync_rng=True`` is bit-identical to the scalar engine on every
  kernel backend, Markov/renewal arrival state included.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    BatchIntervalSimulator,
    BernoulliChannel,
    DBDPPolicy,
    LDFPolicy,
    NetworkSpec,
    idealized_timing,
)
from repro.experiments.runner import run_single, run_sweep
from repro.sim import jit_kernels
from repro.sim.batch_kernels import KERNEL_BACKENDS
from repro.sim.interval_sim import run_simulation
from repro.traffic.arrivals import MarkovModulatedArrivals, ParetoBurstArrivals

SEEDS = tuple(range(24))
INTERVALS = 400
RATIOS = (0.7, 0.8)
POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}
NUM_LINKS = 6


def _mmpp_arrivals():
    return MarkovModulatedArrivals(
        NUM_LINKS, 0.7, 0.1, 0.8, 0.85, initial_state="stationary"
    )


def _pareto_arrivals():
    return ParetoBurstArrivals(NUM_LINKS, start_prob=0.2, tail=1.5, dur_max=32)


def _mmpp_builder(ratio):
    return NetworkSpec.from_delivery_ratios(
        arrivals=_mmpp_arrivals(),
        channel=BernoulliChannel.symmetric(NUM_LINKS, 0.8),
        timing=idealized_timing(NUM_LINKS),
        delivery_ratios=ratio,
    )


def _pareto_builder(ratio):
    return NetworkSpec.from_delivery_ratios(
        arrivals=_pareto_arrivals(),
        channel=BernoulliChannel.symmetric(NUM_LINKS, 0.8),
        timing=idealized_timing(NUM_LINKS),
        delivery_ratios=ratio,
    )


def _cell(result, policy, value):
    (point,) = [
        p for p in result.points if p.policy == policy and p.parameter == value
    ]
    return point


def _assert_joint_ci(f, b, policy, value, label_a, label_b):
    n = len(SEEDS)
    se = math.sqrt(
        (f.deficiency_std**2 + b.deficiency_std**2) / max(n - 1, 1)
    )
    tol = 3.0 * se + 0.02
    assert abs(f.total_deficiency - b.total_deficiency) <= tol, (
        f"{policy}@{value}: {label_a} {f.total_deficiency:.4f} vs "
        f"{label_b} {b.total_deficiency:.4f} (tol {tol:.4f})"
    )


@pytest.fixture(scope="module")
def jit_runnable():
    """Make backend='jit' runnable: compiled if numba is present, else
    the forced-Python flavor of the same kernel bodies."""
    if not jit_kernels.HAS_NUMBA:
        old = jit_kernels.force_python
        jit_kernels.force_python = True
        yield False
        jit_kernels.force_python = old
    else:
        yield True


class TestArrivalStateLeak:
    """Satellite regression: no state may leak between runs."""

    def test_consecutive_scalar_runs_identical(self):
        """Two consecutive scalar runs with the same seed and a *shared*
        process instance are bit-identical."""
        spec = _mmpp_builder(0.8)  # one instance, reused below
        first = run_simulation(spec, LDFPolicy(), 200, seed=7)
        second = run_simulation(spec, LDFPolicy(), 200, seed=7)
        np.testing.assert_array_equal(first.arrivals, second.arrivals)
        np.testing.assert_array_equal(first.deliveries, second.deliveries)

    def test_consecutive_run_single_calls_identical(self):
        spec = _mmpp_builder(0.8)
        first = run_single(spec, LDFPolicy, 150, seeds=(3, 4))
        second = run_single(spec, LDFPolicy, 150, seeds=(3, 4))
        assert first.total_deficiency == second.total_deficiency
        assert first.deficiency_std == second.deficiency_std
        assert first.collisions == second.collisions

    def test_pareto_runs_do_not_leak_residual_bursts(self):
        spec = _pareto_builder(0.8)
        first = run_simulation(spec, LDFPolicy(), 200, seed=11)
        second = run_simulation(spec, LDFPolicy(), 200, seed=11)
        np.testing.assert_array_equal(first.arrivals, second.arrivals)

    def test_batch_free_runs_identical(self):
        spec = _mmpp_builder(0.8)
        sims = []
        for _ in range(2):
            sim = BatchIntervalSimulator(
                spec, LDFPolicy(), (0, 1, 2), rng="free"
            )
            sim.run(80)
            sims.append(sim.result)
        np.testing.assert_array_equal(
            sims[0].deliveries, sims[1].deliveries
        )


@pytest.fixture(scope="module")
def mmpp_sweeps():
    kw = dict(
        parameter_name="ratio",
        values=RATIOS,
        spec_builder=_mmpp_builder,
        policies=POLICIES,
        num_intervals=INTERVALS,
        seeds=SEEDS,
    )
    fused = run_sweep(**kw, engine="fused", rng="free", backend="numpy")
    scalar = run_sweep(**kw, engine="scalar")
    return fused, scalar


class TestMarkovModulatedStatistical:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("value", RATIOS)
    def test_fused_free_matches_scalar_mean(self, mmpp_sweeps, policy, value):
        fused, scalar = mmpp_sweeps
        _assert_joint_ci(
            _cell(fused, policy, value),
            _cell(scalar, policy, value),
            policy,
            value,
            "fused-free",
            "scalar",
        )

    def test_jit_backend_bit_identical_to_numpy(self, mmpp_sweeps, jit_runnable):
        fused_numpy, _ = mmpp_sweeps
        kw = dict(
            parameter_name="ratio",
            values=RATIOS,
            spec_builder=_mmpp_builder,
            policies=POLICIES,
            num_intervals=INTERVALS,
            seeds=SEEDS,
        )
        fused_jit = run_sweep(**kw, engine="fused", rng="free", backend="jit")
        assert fused_jit.points == fused_numpy.points


class TestParetoBurstStatistical:
    def test_fused_free_matches_scalar_mean(self):
        kw = dict(
            parameter_name="ratio",
            values=(RATIOS[0],),
            spec_builder=_pareto_builder,
            policies=POLICIES,
            num_intervals=INTERVALS,
            seeds=SEEDS,
        )
        fused = run_sweep(**kw, engine="fused", rng="free")
        scalar = run_sweep(**kw, engine="scalar")
        for policy in POLICIES:
            _assert_joint_ci(
                _cell(fused, policy, RATIOS[0]),
                _cell(scalar, policy, RATIOS[0]),
                policy,
                RATIOS[0],
                "fused-free",
                "scalar",
            )


class TestSyncIdentity:
    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    @pytest.mark.parametrize("builder", [_mmpp_builder, _pareto_builder])
    def test_sync_batch_bit_identical_to_scalar(
        self, builder, backend, jit_runnable
    ):
        """``sync_rng=True`` replays the scalar per-seed streams, arrival
        state included, on every kernel backend."""
        spec = builder(0.8)
        seeds = (0, 1, 2)
        sim = BatchIntervalSimulator(
            spec, LDFPolicy(), seeds, sync_rng=True, backend=backend
        )
        sim.run(150)
        batch = sim.result
        for s, seed in enumerate(seeds):
            scalar = run_simulation(spec, LDFPolicy(), 150, seed=seed)
            np.testing.assert_array_equal(
                batch.arrivals[:, s], scalar.arrivals
            )
            np.testing.assert_array_equal(
                batch.deliveries[:, s], scalar.deliveries
            )
            np.testing.assert_array_equal(
                batch.attempts[:, s], scalar.attempts
            )
