"""Cross-engine validation: scalar interval engine vs batch engine.

Two levels of agreement are asserted:

* ``sync_rng=True`` — every replication consumes scalar-identical random
  streams in scalar order, so every per-interval trace must be
  **bit-identical** to ``IntervalSimulator(spec, policy, seed=s)``.
* ``sync_rng=False`` (the fast production mode) — draw order differs, so
  agreement is **statistical**: deficiency and throughput on the paper's
  Fig. 3 workload must match across a seed ensemble.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DBDPPolicy,
    ELDFPolicy,
    LDFPolicy,
    RoundRobinPolicy,
    StaticPriorityPolicy,
    run_simulation,
    run_simulation_batch,
)
from repro.experiments.configs import video_symmetric_spec

SEEDS = (0, 1, 2)
INTERVALS = 300

POLICIES = {
    "DB-DP": DBDPPolicy,
    "ELDF": ELDFPolicy,
    "LDF": LDFPolicy,
    "RoundRobin": RoundRobinPolicy,
    "Static": StaticPriorityPolicy,
}


@pytest.fixture(scope="module")
def spec():
    # Fig. 3-style near-capacity video load, shrunk to 6 links for speed.
    return video_symmetric_spec(0.6, num_links=6)


class TestSyncModeBitExact:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_traces_match_scalar_engine(self, spec, name):
        factory = POLICIES[name]
        batch = run_simulation_batch(
            spec, factory(), INTERVALS, SEEDS, sync_rng=True
        )
        for s, seed in enumerate(SEEDS):
            scalar = run_simulation(spec, factory(), INTERVALS, seed=seed)
            np.testing.assert_array_equal(
                batch.arrivals[:, s], scalar.arrivals, err_msg=f"{name} arrivals"
            )
            np.testing.assert_array_equal(
                batch.deliveries[:, s],
                scalar.deliveries,
                err_msg=f"{name} deliveries",
            )
            np.testing.assert_array_equal(
                batch.attempts[:, s], scalar.attempts, err_msg=f"{name} attempts"
            )
            np.testing.assert_array_equal(
                batch.busy_time_us[:, s], scalar.busy_time_us
            )
            np.testing.assert_array_equal(
                batch.overhead_time_us[:, s], scalar.overhead_time_us
            )
            assert batch.total_deficiency()[s] == pytest.approx(
                scalar.total_deficiency()
            )

    def test_priority_dynamics_match_scalar_engine(self, spec):
        """The DP swap chain is the subtlest batch state; in sync mode the
        whole priority trajectory must replay the scalar one."""
        batch = run_simulation_batch(
            spec,
            DBDPPolicy(),
            INTERVALS,
            SEEDS,
            sync_rng=True,
            record_priorities=True,
        )
        for s, seed in enumerate(SEEDS):
            sim_priorities = run_simulation(
                spec, DBDPPolicy(), INTERVALS, seed=seed, record_priorities=True
            ).priorities
            np.testing.assert_array_equal(
                batch.priorities[:, s], np.asarray(sim_priorities)
            )


class TestBatchModeStatisticalAgreement:
    """Fast-mode draws differ from scalar ones, but the physics must not."""

    NUM_SEEDS = 12
    HORIZON = 1200

    @pytest.fixture(scope="class")
    def pair(self):
        spec = video_symmetric_spec(0.6, num_links=6)
        seeds = range(self.NUM_SEEDS)
        out = {}
        for name in ("DB-DP", "LDF"):
            factory = POLICIES[name]
            scalar = [
                run_simulation(spec, factory(), self.HORIZON, seed=s)
                for s in seeds
            ]
            batch = run_simulation_batch(
                spec, factory(), self.HORIZON, list(seeds)
            )
            out[name] = (scalar, batch)
        return out

    @pytest.mark.parametrize("name", ["DB-DP", "LDF"])
    def test_total_deficiency_matches(self, pair, name):
        scalar, batch = pair[name]
        scalar_mean = np.mean([r.total_deficiency() for r in scalar])
        batch_mean = batch.total_deficiency().mean()
        assert batch_mean == pytest.approx(scalar_mean, abs=0.25)

    @pytest.mark.parametrize("name", ["DB-DP", "LDF"])
    def test_timely_throughput_profile_matches(self, pair, name):
        scalar, batch = pair[name]
        scalar_profile = np.mean([r.timely_throughput() for r in scalar], axis=0)
        batch_profile = batch.timely_throughput().mean(axis=0)
        np.testing.assert_allclose(batch_profile, scalar_profile, atol=0.06)

    @pytest.mark.parametrize("name", ["DB-DP", "LDF"])
    def test_airtime_accounting_matches(self, pair, name):
        scalar, batch = pair[name]
        scalar_busy = np.mean([r.busy_time_us.mean() for r in scalar])
        batch_busy = batch.busy_time_us.mean()
        assert batch_busy == pytest.approx(scalar_busy, rel=0.05)
