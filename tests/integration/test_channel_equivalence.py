"""Cross-engine equivalence for stateful and time-varying channels.

Three layers of guarantees, mirroring the Bernoulli ones:

* Gilbert-Elliott under the fused engine with ``rng="free"`` is a
  *fresh sample* of the same estimator as the scalar engine — per-cell
  means must agree within a joint 3-sigma confidence bound (same
  pattern as ``test_fused_statistical.py``).
* The numpy and jit batch backends consume the identical dynamic draw
  planes, so their fused Gilbert-Elliott sweeps are bit-identical.
* ``sync_rng=True`` drives scalar clones from per-seed streams, so the
  batch engine is *bit-identical* to the scalar engine even with
  Markov channel state; the deterministic ``TimeVaryingReliability``
  schedule is additionally exact under the lockstep disciplines.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro import (
    BatchIntervalSimulator,
    DBDPPolicy,
    GilbertElliottChannel,
    LDFPolicy,
)
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.runner import run_sweep
from repro.phy.channel import TimeVaryingReliability
from repro.sim import jit_kernels
from repro.sim.interval_sim import run_simulation

SEEDS = tuple(range(24))
INTERVALS = 400
VALUES = (0.55, 0.65)
POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}
NUM_LINKS = 6


def _ge_builder(alpha):
    spec = video_symmetric_spec(alpha, num_links=NUM_LINKS)
    return dataclasses.replace(spec, channel=GilbertElliottChannel(NUM_LINKS))


def _tv_builder(alpha):
    spec = video_symmetric_spec(alpha, num_links=NUM_LINKS)
    channel = TimeVaryingReliability.symmetric(
        NUM_LINKS, 0.8, profile="drift", period=60, amplitude=0.15
    )
    return dataclasses.replace(spec, channel=channel)


def _cell(result, policy, value):
    (point,) = [
        p for p in result.points if p.policy == policy and p.parameter == value
    ]
    return point


def _assert_joint_ci(f, b, policy, value, label_a, label_b):
    n = len(SEEDS)
    se = math.sqrt(
        (f.deficiency_std**2 + b.deficiency_std**2) / max(n - 1, 1)
    )
    tol = 3.0 * se + 0.02
    assert abs(f.total_deficiency - b.total_deficiency) <= tol, (
        f"{policy}@{value}: {label_a} {f.total_deficiency:.4f} vs "
        f"{label_b} {b.total_deficiency:.4f} (tol {tol:.4f})"
    )


@pytest.fixture(scope="module")
def jit_runnable():
    """Make backend='jit' runnable: compiled if numba is present, else
    the forced-Python flavor of the same kernel bodies."""
    if not jit_kernels.HAS_NUMBA:
        old = jit_kernels.force_python
        jit_kernels.force_python = True
        yield False
        jit_kernels.force_python = old
    else:
        yield True


@pytest.fixture(scope="module")
def ge_sweeps():
    kw = dict(
        parameter_name="alpha",
        values=VALUES,
        spec_builder=_ge_builder,
        policies=POLICIES,
        num_intervals=INTERVALS,
        seeds=SEEDS,
    )
    fused = run_sweep(**kw, engine="fused", rng="free", backend="numpy")
    scalar = run_sweep(**kw, engine="scalar")
    return fused, scalar


class TestGilbertElliottStatistical:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("value", VALUES)
    def test_fused_free_matches_scalar_mean(self, ge_sweeps, policy, value):
        fused, scalar = ge_sweeps
        _assert_joint_ci(
            _cell(fused, policy, value),
            _cell(scalar, policy, value),
            policy,
            value,
            "fused-free",
            "scalar",
        )

    def test_burst_channel_hurts_versus_stationary_bernoulli(self, ge_sweeps):
        """Sanity anchor: the Gilbert-Elliott scalar cells must not be a
        silent Bernoulli replay — bursty losses at equal stationary
        reliability leave a distinct (here: non-trivial) deficiency."""
        _, scalar = ge_sweeps
        assert _cell(scalar, "LDF", VALUES[1]).total_deficiency > 0.0

    def test_jit_backend_bit_identical_to_numpy(self, ge_sweeps, jit_runnable):
        fused_numpy, _ = ge_sweeps
        kw = dict(
            parameter_name="alpha",
            values=VALUES,
            spec_builder=_ge_builder,
            policies=POLICIES,
            num_intervals=INTERVALS,
            seeds=SEEDS,
        )
        fused_jit = run_sweep(**kw, engine="fused", rng="free", backend="jit")
        assert fused_jit.points == fused_numpy.points


class TestGilbertElliottSyncIdentity:
    @pytest.mark.parametrize("factory", [LDFPolicy, DBDPPolicy])
    def test_sync_batch_bit_identical_to_scalar(self, factory):
        """Exact per-interval identity where defined: ``sync_rng=True``
        replays the scalar per-seed streams, Markov state included."""
        spec = _ge_builder(0.6)
        seeds = (0, 1, 2)
        sim = BatchIntervalSimulator(spec, factory(), seeds, sync_rng=True)
        sim.run(150)
        batch = sim.result
        for s, seed in enumerate(seeds):
            scalar = run_simulation(spec, factory(), 150, seed=seed)
            np.testing.assert_array_equal(
                batch.deliveries[:, s], scalar.deliveries
            )
            np.testing.assert_array_equal(
                batch.arrivals[:, s], scalar.arrivals
            )
            np.testing.assert_array_equal(
                batch.attempts[:, s], scalar.attempts
            )


class TestTimeVaryingReliability:
    def test_lockstep_batch_matches_scalar_mean(self):
        """The deterministic schedule consumes no state randomness, so it
        runs under the *default* lockstep discipline; means must agree
        with the scalar engine within the joint confidence bound."""
        kw = dict(
            parameter_name="alpha",
            values=(VALUES[0],),
            spec_builder=_tv_builder,
            policies=POLICIES,
            num_intervals=INTERVALS,
            seeds=SEEDS,
        )
        fused = run_sweep(**kw, engine="fused")
        scalar = run_sweep(**kw, engine="scalar")
        for policy in POLICIES:
            _assert_joint_ci(
                _cell(fused, policy, VALUES[0]),
                _cell(scalar, policy, VALUES[0]),
                policy,
                VALUES[0],
                "fused-lockstep",
                "scalar",
            )

    def test_sync_batch_bit_identical_to_scalar(self):
        spec = _tv_builder(0.6)
        seeds = (0, 1)
        sim = BatchIntervalSimulator(spec, LDFPolicy(), seeds, sync_rng=True)
        sim.run(130)  # > 2 periods: exercises the schedule wrap
        batch = sim.result
        for s, seed in enumerate(seeds):
            scalar = run_simulation(spec, LDFPolicy(), 130, seed=seed)
            np.testing.assert_array_equal(
                batch.deliveries[:, s], scalar.deliveries
            )
            np.testing.assert_array_equal(
                batch.attempts[:, s], scalar.attempts
            )
