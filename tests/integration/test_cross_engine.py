"""Cross-engine validation: interval engine vs microsecond event engine.

The two simulators realize the same protocol through different machinery
(closed-form timeline vs carrier-sensing events); their statistics must
agree on matched scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    DBDPPolicy,
    ConstantSwapBias,
    DPProtocol,
    NetworkSpec,
    low_latency_timing,
    run_simulation,
    video_timing,
)
from repro.sim.event_sim import EventDrivenDPSimulator
from repro.traffic.arrivals import BurstyVideoArrivals


@pytest.fixture(scope="module")
def video_pair():
    spec = NetworkSpec.from_delivery_ratios(
        arrivals=BurstyVideoArrivals.symmetric(10, 0.5),
        channel=BernoulliChannel.symmetric(10, 0.7),
        timing=video_timing(),
        delivery_ratios=0.9,
    )
    event = EventDrivenDPSimulator(spec, seed=42).run(700)
    interval = run_simulation(spec, DBDPPolicy(), 700, seed=42)
    return spec, event, interval


class TestVideoScenarioAgreement:
    def test_total_throughput(self, video_pair):
        _, event, interval = video_pair
        assert event.deliveries.sum(axis=1).mean() == pytest.approx(
            interval.deliveries.sum(axis=1).mean(), rel=0.03
        )

    def test_per_link_throughput_profile(self, video_pair):
        _, event, interval = video_pair
        np.testing.assert_allclose(
            event.timely_throughput(),
            interval.timely_throughput(),
            atol=0.25,
        )

    def test_deficiency_same_scale(self, video_pair):
        _, event, interval = video_pair
        assert event.total_deficiency() == pytest.approx(
            interval.total_deficiency(), abs=0.5
        )

    def test_busy_time_statistics(self, video_pair):
        spec, event, interval = video_pair
        # The event engine measures real channel occupancy; both engines
        # count data airtime identically up to empty-packet bookkeeping.
        assert event.busy_time_us.mean() == pytest.approx(
            interval.busy_time_us.mean(), rel=0.05
        )


class TestSwapDynamicsAgreement:
    def test_swap_rates_match(self):
        """With constant mu the committed-swap rate is a protocol constant;
        both engines must measure the same value."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(6, 0.5),
            channel=BernoulliChannel.symmetric(6, 0.9),
            timing=low_latency_timing(),
            delivery_ratios=0.8,
        )
        intervals = 3000

        event = EventDrivenDPSimulator(
            spec, bias=ConstantSwapBias(0.5), seed=7, record_priorities=True
        )
        event.run(intervals)
        event_priorities = event.result.priorities
        event_swaps = sum(
            1
            for a, b in zip(event_priorities, event_priorities[1:])
            if a != b
        )

        policy = DPProtocol(bias=ConstantSwapBias(0.5))
        from repro import IntervalSimulator

        sim = IntervalSimulator(
            spec, policy, seed=7, record_priorities=True
        )
        sim.run(intervals)
        interval_priorities = sim.result.priorities
        interval_swaps = sum(
            1
            for a, b in zip(interval_priorities, interval_priorities[1:])
            if a != b
        )

        event_rate = event_swaps / intervals
        interval_rate = interval_swaps / intervals
        # Theory: (1 - mu) mu = 0.25 per interval when the handshake always
        # completes (light load).
        assert event_rate == pytest.approx(0.25, abs=0.03)
        assert interval_rate == pytest.approx(0.25, abs=0.03)

    def test_stationary_occupancy_matches_between_engines(self):
        """Long-run P(link at priority 1) agrees across engines for a
        3-link chain with asymmetric fixed biases."""
        from repro import ConstantArrivals, PerLinkSwapBias

        mus = (0.8, 0.5, 0.2)
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(3, 1),
            channel=BernoulliChannel.symmetric(3, 1.0),
            timing=low_latency_timing(),
            delivery_ratios=1.0,
        )
        intervals = 6000

        event = EventDrivenDPSimulator(
            spec, bias=PerLinkSwapBias(mus), seed=3, record_priorities=True
        )
        event.run(intervals)

        from repro import IntervalSimulator

        sim = IntervalSimulator(
            spec,
            DPProtocol(bias=PerLinkSwapBias(mus)),
            seed=3,
            record_priorities=True,
        )
        sim.run(intervals)

        def top_occupancy(priorities_list):
            counts = np.zeros(3)
            for sigma in priorities_list:
                counts[sigma.index(1)] += 1
            return counts / len(priorities_list)

        event_occ = top_occupancy(event.result.priorities)
        interval_occ = top_occupancy(sim.result.priorities)
        np.testing.assert_allclose(event_occ, interval_occ, atol=0.05)
        # And both match Proposition 2's closed form.
        from repro.analysis.stationary import stationary_distribution

        closed = stationary_distribution(mus)
        theory = np.zeros(3)
        for sigma, prob in closed.items():
            theory[sigma.index(1)] += prob
        np.testing.assert_allclose(event_occ, theory, atol=0.05)
