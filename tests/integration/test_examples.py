"""Every example script must run end-to-end (shrunk horizons).

The examples are part of the public deliverable; these tests execute each
one's ``main()`` with reduced interval counts and assert the narrative
output appears — so a refactor that breaks an example fails CI, not a
reader.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    # Shrink any scaled_intervals-driven horizons.
    monkeypatch.setenv("REPRO_SCALE", "0.02")
    yield
    for name in list(sys.modules):
        if name in {
            "quickstart",
            "video_delivery",
            "industrial_control",
            "priority_dynamics",
            "feasibility_analysis",
            "protocol_timeline",
        }:
            del sys.modules[name]


def run_example(name: str, monkeypatch, capsys, **overrides) -> str:
    module = importlib.import_module(name)
    for attribute, value in overrides.items():
        monkeypatch.setattr(module, attribute, value, raising=True)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart", monkeypatch, capsys, INTERVALS=300)
        assert "total deficiency" in out
        assert "DB-DP" in out and "LDF" in out

    def test_video_delivery(self, monkeypatch, capsys):
        out = run_example("video_delivery", monkeypatch, capsys)
        assert "fig3" in out
        assert "LDF sustains alpha*" in out

    def test_industrial_control(self, monkeypatch, capsys):
        out = run_example(
            "industrial_control", monkeypatch, capsys, INTERVALS=150
        )
        assert "event-driven engine" in out
        assert "delivery ratios" in out

    def test_priority_dynamics(self, monkeypatch, capsys):
        module = importlib.import_module("priority_dynamics")
        monkeypatch.setattr(
            module,
            "long_run_distribution",
            lambda num_intervals=0: module.__dict__["narrate"](4),
        )
        module.narrate(6)
        module.long_run_distribution()
        out = capsys.readouterr().out
        assert "committed" in out

    def test_priority_dynamics_full_main_small(self, monkeypatch, capsys):
        module = importlib.import_module("priority_dynamics")
        original = module.long_run_distribution
        monkeypatch.setattr(
            module,
            "long_run_distribution",
            lambda num_intervals=40000: original(num_intervals=4000),
        )
        module.main()
        out = capsys.readouterr().out
        assert "empirical" in out and "theory" in out

    def test_feasibility_analysis(self, monkeypatch, capsys):
        module = importlib.import_module("feasibility_analysis")
        # Shrink the inner horizons by monkeypatching run_simulation.
        from repro import run_simulation as real_run

        monkeypatch.setattr(
            module,
            "run_simulation",
            lambda spec, policy, n, seed: real_run(
                spec, policy, min(n, 300), seed=seed
            ),
        )
        module.main()
        out = capsys.readouterr().out
        assert "workload utilization" in out
        assert "INFEASIBLE" in out

    def test_protocol_timeline(self, monkeypatch, capsys):
        out = run_example(
            "protocol_timeline", monkeypatch, capsys, INTERVALS_TO_SHOW=3
        )
        assert "interval 0" in out
        assert "collision-freedom audit passed" in out
