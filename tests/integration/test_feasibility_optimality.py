"""Integration tests of the feasibility-optimality claims (Theorem 1,
Proposition 1) on small networks.

Strategy: build networks whose feasibility status is known (via the exact
one-packet hull or workload bounds), then check that LDF and DB-DP fulfill
the feasible ones and that debts stay stable (positive recurrence proxy).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    DBDPPolicy,
    IntervalSimulator,
    LDFPolicy,
    NetworkSpec,
    idealized_timing,
)
from repro.analysis.feasibility import priority_hull_contains


def one_packet_spec(ps, slots, rhos):
    n = len(ps)
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(n, 1),
        channel=BernoulliChannel(success_probs=tuple(ps)),
        timing=idealized_timing(slots),
        delivery_ratios=rhos,
    )


class TestKnownFeasiblePoints:
    @pytest.mark.parametrize(
        "ps,slots,rhos",
        [
            ((0.7, 0.7, 0.7), 8, (0.9, 0.9, 0.9)),
            ((0.5, 0.9), 6, (0.85, 0.9)),
            ((0.6, 0.6, 0.6, 0.6), 12, (0.88, 0.88, 0.88, 0.88)),
        ],
    )
    def test_hull_certifies_then_both_policies_fulfill(self, ps, slots, rhos):
        spec = one_packet_spec(ps, slots, rhos)
        # Exact certificate (strictly feasible with 3% margin).
        scaled = tuple(min(r * 1.03, 1.0) * lam for r, lam in
                       zip(np.atleast_1d(rhos), spec.mean_rates))
        assert priority_hull_contains(scaled, ps, slots)
        for policy in (LDFPolicy(), DBDPPolicy()):
            sim = IntervalSimulator(spec, policy, seed=0)
            sim.run(3000)
            assert sim.result.total_deficiency() < 0.03, policy.name

    def test_positive_debts_stay_bounded_for_feasible_q(self):
        """Positive recurrence proxy: the positive part of the debt stays
        far below linear growth (the raw debt may drift negative — surplus
        accumulates when capacity exceeds q, and Eq. (1) never clips it)."""
        spec = one_packet_spec((0.7, 0.7, 0.7), 8, (0.9, 0.9, 0.9))
        sim = IntervalSimulator(spec, DBDPPolicy(), seed=1)
        sim.run(4000)
        assert sim.ledger.positive_debts.max() < 0.02 * 4000


class TestKnownInfeasiblePoints:
    def test_hull_rejects_and_deficiency_persists(self):
        ps = (0.5, 0.5)
        slots = 3
        rhos = (0.99, 0.99)
        spec = one_packet_spec(ps, slots, rhos)
        assert not priority_hull_contains(
            spec.requirement_vector, ps, slots
        )
        sim = IntervalSimulator(spec, LDFPolicy(), seed=0)
        sim.run(2500)
        # LDF is feasibility-optimal: if even LDF keeps a residual, q is
        # infeasible, and the residual must not vanish with time.
        assert sim.result.total_deficiency() > 0.01

    def test_ldf_minimizes_total_shortfall_versus_static(self):
        """On an infeasible instance, the debt-adaptive policy spreads the
        shortfall and achieves a total deficiency no worse than any static
        ordering."""
        from repro import StaticPriorityPolicy

        ps = (0.6, 0.6, 0.6)
        spec = one_packet_spec(ps, 4, (0.95, 0.95, 0.95))
        ldf = IntervalSimulator(spec, LDFPolicy(), seed=2)
        ldf.run(2000)
        static = IntervalSimulator(spec, StaticPriorityPolicy(), seed=2)
        static.run(2000)
        assert (
            ldf.result.total_deficiency()
            <= static.result.total_deficiency() + 0.02
        )


class TestDBDPTracksLDF:
    def test_near_boundary_gap_is_small(self):
        """Close to the feasibility boundary DB-DP's deficiency stays within
        a small additive gap of LDF's (the headline claim, small network)."""
        spec = one_packet_spec((0.7,) * 4, 7, (0.92,) * 4)
        ldf = IntervalSimulator(spec, LDFPolicy(), seed=3)
        ldf.run(4000)
        dbdp = IntervalSimulator(spec, DBDPPolicy(), seed=3)
        dbdp.run(4000)
        assert (
            dbdp.result.total_deficiency()
            <= ldf.result.total_deficiency() + 0.1
        )
