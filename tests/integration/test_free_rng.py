"""The ``rng="free"`` draw discipline: determinism, equivalence, fallback.

The free discipline's contract is *statistical* equivalence with the
default lockstep-batch discipline — kernels draw only what they consume
from independently derived per-(seed, stream) substreams, so bit
identity is explicitly NOT promised.  What is promised, and asserted
here:

* determinism: free draws are a pure function of (seeds, stream tag,
  stream name) — the same sweep run twice is bit-identical;
* distinctness: free draws differ from the batch discipline's (same
  seeds), and the two disciplines' per-cell means agree within the same
  joint confidence bound used by ``test_fused_statistical.py``;
* capability gating: families without ``supports_free_rng`` degrade to
  the batch discipline with exactly one ``UserWarning`` per sweep (and
  raise ``TypeError`` when handed to the batch simulator directly);
* mode hygiene: ``rng="free"`` contradicts ``sync_rng=True``, is
  rejected on the frozen legacy backend, and is meaningless on the
  scalar engine.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro import DBDPPolicy, LDFPolicy, RoundRobinPolicy, run_simulation_batch
from repro.core import registry
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.grid import run_sweep_fused
from repro.experiments.runner import run_single, run_sweep
from repro.sim.batch_sim import BatchIntervalSimulator, supports_batch_engine
from repro.sim.rng import RNG_MODES, normalize_rng_mode

SEEDS = tuple(range(24))
INTERVALS = 400
VALUES = (0.5, 0.65)
POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}


def builder(alpha):
    return video_symmetric_spec(alpha, num_links=6)


def _totals(result):
    return [p.total_deficiency for p in result.points]


class TestNormalizeRngMode:
    def test_defaults(self):
        assert normalize_rng_mode() == "batch"
        assert normalize_rng_mode(None, sync_rng=True) == "sync"
        assert RNG_MODES == ("sync", "batch", "free")

    @pytest.mark.parametrize("mode", RNG_MODES)
    def test_explicit_modes_pass_through(self, mode):
        assert normalize_rng_mode(mode) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown rng mode"):
            normalize_rng_mode("quantum")

    @pytest.mark.parametrize("mode", ["batch", "free"])
    def test_sync_rng_contradiction_rejected(self, mode):
        with pytest.raises(ValueError, match="contradicts sync_rng"):
            normalize_rng_mode(mode, sync_rng=True)


class TestFreeModeGuards:
    def test_legacy_backend_rejected(self):
        with pytest.raises(ValueError, match="legacy backend"):
            run_simulation_batch(
                builder(0.5), DBDPPolicy(), 10, (0, 1),
                backend="legacy", rng="free",
            )

    def test_scalar_engine_rejected(self):
        with pytest.raises(ValueError, match="engine='batch' or 'fused'"):
            run_single(
                builder(0.5), DBDPPolicy, 10, (0,), engine="scalar",
                rng="free",
            )
        with pytest.raises(ValueError, match="engine='batch' or 'fused'"):
            run_sweep(
                "alpha", [0.5], builder, {"DB-DP": DBDPPolicy}, 10, (0,),
                engine="scalar", rng="free",
            )


class TestFreeDeterminismAndDistinctness:
    @pytest.mark.parametrize("factory", [DBDPPolicy, LDFPolicy],
                             ids=lambda f: f.__name__)
    def test_direct_batch_free_is_deterministic(self, factory):
        spec = builder(0.55)
        a = run_simulation_batch(spec, factory(), 200, (0, 1, 2), rng="free")
        b = run_simulation_batch(spec, factory(), 200, (0, 1, 2), rng="free")
        assert (a.deliveries == b.deliveries).all()
        assert (a.attempts == b.attempts).all()
        assert (a.collisions == b.collisions).all()

    def test_direct_batch_free_differs_from_batch(self):
        spec = builder(0.55)
        free = run_simulation_batch(spec, DBDPPolicy(), 200, (0, 1), rng="free")
        batch = run_simulation_batch(spec, DBDPPolicy(), 200, (0, 1))
        assert (free.deliveries != batch.deliveries).any()

    def test_fused_free_sweep_is_deterministic(self):
        kw = dict(num_intervals=150, seeds=(0, 1, 2), rng="free")
        a = run_sweep_fused("alpha", VALUES, builder, POLICIES, **kw)
        b = run_sweep_fused("alpha", VALUES, builder, POLICIES, **kw)
        assert a.points == b.points


class TestFreeStatisticalEquivalence:
    """Free vs batch disciplines, same harness as test_fused_statistical."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        kw = dict(
            parameter_name="alpha",
            values=VALUES,
            spec_builder=builder,
            policies=POLICIES,
            num_intervals=INTERVALS,
            seeds=SEEDS,
        )
        free = run_sweep_fused(**kw, rng="free")
        batch = run_sweep_fused(**kw)
        return free, batch

    @staticmethod
    def _cell(result, policy, value):
        (point,) = [
            p for p in result.points
            if p.policy == policy and p.parameter == value
        ]
        return point

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("value", VALUES)
    def test_means_within_joint_confidence_bound(self, sweeps, policy, value):
        free, batch = sweeps
        f = self._cell(free, policy, value)
        b = self._cell(batch, policy, value)
        n = len(SEEDS)
        se = math.sqrt(
            (f.deficiency_std**2 + b.deficiency_std**2) / max(n - 1, 1)
        )
        tol = 3.0 * se + 0.02
        assert abs(f.total_deficiency - b.total_deficiency) <= tol, (
            f"{policy}@{value}: free {f.total_deficiency:.4f} vs batch "
            f"{b.total_deficiency:.4f} (tol {tol:.4f})"
        )

    def test_collisions_and_overhead_track(self, sweeps):
        free, batch = sweeps
        for policy in POLICIES:
            for value in VALUES:
                f = self._cell(free, policy, value)
                b = self._cell(batch, policy, value)
                assert abs(f.collisions - b.collisions) <= max(
                    5.0, 0.25 * max(f.collisions, b.collisions)
                )
                assert abs(f.mean_overhead_us - b.mean_overhead_us) <= max(
                    5.0, 0.25 * max(f.mean_overhead_us, b.mean_overhead_us)
                )


class TestCapabilityFallback:
    @pytest.fixture
    def no_free_family(self):
        """Re-register RoundRobin with ``supports_free_rng`` withdrawn."""
        descriptor = registry.descriptor_for(RoundRobinPolicy())
        stripped = dataclasses.replace(
            descriptor,
            capabilities=dataclasses.replace(
                descriptor.capabilities, supports_free_rng=False
            ),
        )
        registry.unregister(descriptor.name)
        registry.register(stripped)
        try:
            yield descriptor.name
        finally:
            registry.unregister(descriptor.name)
            registry.register(descriptor)

    def test_supports_batch_engine_refuses_free(self, no_free_family):
        spec = builder(0.5)
        assert supports_batch_engine(spec, RoundRobinPolicy())
        assert not supports_batch_engine(spec, RoundRobinPolicy(), rng="free")

    def test_direct_simulator_raises_type_error(self, no_free_family):
        spec = builder(0.5)
        with pytest.raises(TypeError, match="supports_free_rng"):
            BatchIntervalSimulator([spec] * 2, RoundRobinPolicy(), [0, 1],
                                   rng="free")

    def test_fused_sweep_degrades_with_one_warning(self, no_free_family):
        kw = dict(num_intervals=80, seeds=(0, 1))
        policies = {"DB-DP": DBDPPolicy, "RoundRobin": RoundRobinPolicy}
        with pytest.warns(UserWarning, match="supports_free_rng") as record:
            free = run_sweep_fused(
                "alpha", VALUES, builder, policies, rng="free", **kw
            )
        assert (
            len([w for w in record if "supports_free_rng" in str(w.message)])
            == 1
        )
        batch = run_sweep_fused("alpha", VALUES, builder, policies, **kw)
        # Degraded cells run the default batch discipline: bit-identical
        # to a plain batch sweep.  Capable cells run genuinely free.
        for f, b in zip(free.points, batch.points):
            if f.policy == "RoundRobin":
                assert f == b
        assert _totals(free) != _totals(batch)

    def test_run_single_degrades_silently(self, no_free_family):
        spec = builder(0.5)
        free = run_single(spec, RoundRobinPolicy, 100, (0, 1), engine="batch",
                          rng="free")
        batch = run_single(spec, RoundRobinPolicy, 100, (0, 1), engine="batch")
        # run_single leaves parameter=NaN (filled by run_sweep); pin it
        # so dataclass equality compares the measurements.
        assert dataclasses.replace(free, parameter=0.0) == dataclasses.replace(
            batch, parameter=0.0
        )
