"""Statistical cross-engine equivalence: fused vs per-cell batch sweeps.

In the production ``sync_rng=False`` mode the fused engine draws from
``"fused"``-tagged mega-batch streams, so its cells are *fresh samples* of
the same per-cell estimator rather than bit-identical replays.  This test
runs a 24-seed ensemble per cell for both engines and asserts the
per-cell means agree within a 3-sigma confidence bound derived from both
ensembles' spreads — the two estimators must be statistically
indistinguishable, per policy and per load level.

(The bit-exact ``sync_rng=True`` correspondence is covered in
``tests/experiments/test_grid.py``; scalar-vs-batch agreement in
``test_batch_cross_engine.py``.)
"""

from __future__ import annotations

import math

import pytest

from repro import DBDPPolicy, LDFPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.grid import run_sweep_fused
from repro.experiments.runner import run_sweep

SEEDS = tuple(range(24))
INTERVALS = 400
VALUES = (0.5, 0.65)
POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}


def builder(alpha):
    return video_symmetric_spec(alpha, num_links=6)


@pytest.fixture(scope="module")
def sweeps():
    kw = dict(
        parameter_name="alpha",
        values=VALUES,
        spec_builder=builder,
        policies=POLICIES,
        num_intervals=INTERVALS,
        seeds=SEEDS,
    )
    fused = run_sweep_fused(**kw)
    per_cell = run_sweep(**kw, engine="batch")
    return fused, per_cell


def _cell(result, policy, value):
    (point,) = [
        p for p in result.points if p.policy == policy and p.parameter == value
    ]
    return point


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("value", VALUES)
def test_means_within_joint_confidence_bound(sweeps, policy, value):
    fused, per_cell = sweeps
    f = _cell(fused, policy, value)
    b = _cell(per_cell, policy, value)
    # Standard error of the difference of two independent 24-seed means;
    # the stored std is the population std over seeds.
    n = len(SEEDS)
    se = math.sqrt(
        (f.deficiency_std**2 + b.deficiency_std**2) / max(n - 1, 1)
    )
    tol = 3.0 * se + 0.02
    assert abs(f.total_deficiency - b.total_deficiency) <= tol, (
        f"{policy}@{value}: fused {f.total_deficiency:.4f} vs per-cell "
        f"{b.total_deficiency:.4f} (tol {tol:.4f})"
    )


def test_collisions_and_overhead_track(sweeps):
    """Secondary outputs must agree in scale, not just the headline
    deficiency (guards against an engine silently zeroing a channel)."""
    fused, per_cell = sweeps
    for policy in POLICIES:
        for value in VALUES:
            f = _cell(fused, policy, value)
            b = _cell(per_cell, policy, value)
            assert abs(f.collisions - b.collisions) <= max(
                5.0, 0.25 * max(f.collisions, b.collisions)
            )
            assert abs(f.mean_overhead_us - b.mean_overhead_us) <= max(
                5.0, 0.25 * max(f.mean_overhead_us, b.mean_overhead_us)
            )
