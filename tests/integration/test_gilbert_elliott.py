"""End-to-end runs over the Gilbert-Elliott burst-loss channel.

The stateful channel evolves once per interval and is i.i.d. within it;
these tests pin the scalar engine's invariants on that path and the
qualitative robustness story from the extension experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    DBDPPolicy,
    GilbertElliottChannel,
    LDFPolicy,
    NetworkSpec,
    idealized_timing,
    run_simulation,
)


def ge_spec(n=4, rho=0.8):
    return NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(n, 0.8),
        channel=GilbertElliottChannel(
            n, p_good=0.95, p_bad=0.2, p_stay_good=0.9, p_stay_bad=0.7
        ),
        timing=idealized_timing(10),
        delivery_ratios=rho,
    )


class TestStatefulChannelPath:
    def test_invariants_hold(self):
        spec = ge_spec()
        result = run_simulation(spec, DBDPPolicy(), 500, seed=0)
        assert np.all(result.deliveries <= result.arrivals)
        assert np.all(result.attempts >= result.deliveries)
        assert int(result.collisions.sum()) == 0

    def test_reproducible(self):
        a = run_simulation(ge_spec(), LDFPolicy(), 300, seed=7)
        b = run_simulation(ge_spec(), LDFPolicy(), 300, seed=7)
        np.testing.assert_array_equal(a.deliveries, b.deliveries)

    def test_moderate_requirement_fulfilled(self):
        """Stationary reliability ~0.77 with ample slots: a 0.8 ratio on
        Bernoulli(0.8) arrivals is sustainable despite the bursts."""
        spec = ge_spec(rho=0.8)
        result = run_simulation(spec, LDFPolicy(), 3000, seed=1)
        assert result.total_deficiency() < 0.05

    def test_attempt_cost_reflects_burst_losses(self):
        spec = ge_spec()
        result = run_simulation(spec, LDFPolicy(), 2000, seed=2)
        attempts = result.attempts.sum()
        deliveries = result.deliveries.sum()
        empirical_p = deliveries / attempts
        channel = spec.channel
        stationary = float(spec.reliabilities[0])
        # The state is frozen within an interval, so retries pile up in
        # BAD intervals: deliveries per attempt land strictly between
        # p_bad and the stationary mean (attempts oversample bad states).
        assert float(np.max(channel.p_bad)) < empirical_p < stationary

    def test_dbdp_tracks_ldf_on_bursty_channel(self):
        spec = ge_spec(rho=0.8)
        dbdp = run_simulation(spec, DBDPPolicy(), 2500, seed=3)
        ldf = run_simulation(spec, LDFPolicy(), 2500, seed=3)
        assert dbdp.total_deficiency() <= ldf.total_deficiency() + 0.15
