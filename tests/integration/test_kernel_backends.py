"""Cross-backend bit-identity: legacy vs workspace NumPy vs JIT kernels.

The workspace refactor must be invisible in the outputs: all kernel
backends consume the same generator values in the same order, and every
derived quantity is an exact small integer in float storage, so the
closed-form workspace passes, the compiled (or forced-Python) per-row
loops, and the legacy implementation must agree **bit for bit** — on
full fused sweeps and on direct batch runs, priorities included.

The JIT leg runs compiled when numba is importable; otherwise it runs
the pure-Python bodies of the same loop functions
(``jit_kernels.force_python``), which exercises exactly the code numba
would compile.  The CI workflow runs this module both with and without
numba installed, so both flavors are proven.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import (
    DBDPPolicy,
    ELDFPolicy,
    LDFPolicy,
    RoundRobinPolicy,
    StaticPriorityPolicy,
    run_simulation_batch,
)
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.grid import run_sweep_fused
from repro.sim import jit_kernels
from repro.sim.batch_kernels import KERNEL_BACKENDS, resolve_backend

SEEDS = (0, 1, 2, 3)
INTERVALS = 250
ALPHAS = (0.45, 0.55, 0.65)
POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}


@pytest.fixture
def jit_runnable(monkeypatch):
    """Make backend='jit' runnable: compiled if numba is present, else
    forced through the pure-Python loop bodies."""
    if not jit_kernels.HAS_NUMBA:
        monkeypatch.setattr(jit_kernels, "force_python", True)
    return jit_kernels.HAS_NUMBA


def _fused(backend):
    return run_sweep_fused(
        "alpha",
        ALPHAS,
        lambda a: video_symmetric_spec(a, delivery_ratio=0.9),
        POLICIES,
        INTERVALS,
        SEEDS,
        validate=False,
        backend=backend,
    )


class TestFusedSweepBackendIdentity:
    def test_numpy_matches_legacy_bitwise(self):
        assert _fused("numpy").points == _fused("legacy").points

    def test_jit_matches_legacy_bitwise(self, jit_runnable):
        assert _fused("jit").points == _fused("legacy").points


class TestDirectBatchBackendIdentity:
    @pytest.mark.parametrize(
        "factory",
        [DBDPPolicy, ELDFPolicy, LDFPolicy, RoundRobinPolicy,
         StaticPriorityPolicy],
        ids=lambda f: f.__name__,
    )
    def test_all_backends_agree_on_every_field(self, factory, jit_runnable):
        spec = video_symmetric_spec(0.6, num_links=6)
        results = {
            backend: run_simulation_batch(
                spec, factory(), INTERVALS, SEEDS,
                record_priorities=True, backend=backend,
            )
            for backend in KERNEL_BACKENDS
        }
        ref = results["legacy"]
        for backend in ("numpy", "jit"):
            got = results[backend]
            for field in (
                "arrivals", "deliveries", "attempts", "busy_time_us",
                "overhead_time_us", "collisions", "priorities",
            ):
                np.testing.assert_array_equal(
                    getattr(got, field),
                    getattr(ref, field),
                    err_msg=f"{factory.__name__}/{backend}/{field}",
                )


class TestBackendResolution:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_explicit_backends_pass_through(self):
        assert resolve_backend("legacy") == "legacy"
        assert resolve_backend("numpy") == "numpy"

    def test_default_prefers_jit_when_compiled_else_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_JIT", raising=False)
        monkeypatch.setattr(jit_kernels, "force_python", False)
        expected = "jit" if jit_kernels.HAS_NUMBA else "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the silent default never warns
            assert resolve_backend(None) == expected

    def test_default_ignores_jit_when_forced_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_JIT", raising=False)
        monkeypatch.setattr(jit_kernels, "force_python", True)
        assert resolve_backend(None) == "numpy"

    def test_repro_jit_env_requests_jit(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_JIT", "1")
        if jit_kernels.available():
            assert resolve_backend(None) == "jit"
        else:
            with pytest.warns(RuntimeWarning, match="numba is not installed"):
                assert resolve_backend(None) == "numpy"

    @pytest.mark.skipif(
        jit_kernels.HAS_NUMBA, reason="needs a numba-free environment"
    )
    def test_jit_without_numba_degrades_with_warning(self, monkeypatch):
        monkeypatch.setattr(jit_kernels, "force_python", False)
        with pytest.warns(RuntimeWarning, match="falls back"):
            assert resolve_backend("jit") == "numpy"

    @pytest.mark.skipif(
        not jit_kernels.HAS_NUMBA, reason="compiled leg needs numba"
    )
    def test_jit_with_numba_resolves_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("jit") == "jit"
