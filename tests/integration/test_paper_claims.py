"""Reduced-horizon checks of the paper's qualitative evaluation claims.

These run the Section VI scenarios at the paper's network sizes but with
shorter horizons (1-3 k intervals instead of 5-20 k), asserting the *shape*
the paper reports: DB-DP ~ LDF, FCSMA markedly worse, no starvation under
fixed priorities, convergence of the bottom link, quantifiably small
overhead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DBDPPolicy,
    FCSMAPolicy,
    LDFPolicy,
    StaticPriorityPolicy,
    run_simulation,
)
from repro.analysis.convergence import running_mean
from repro.analysis.metrics import group_deficiency, jains_fairness_index
from repro.experiments.configs import (
    ASYMMETRIC_GROUPS,
    video_asymmetric_spec,
    video_symmetric_spec,
)


class TestFigure3Shape:
    """DB-DP ~ LDF; FCSMA lifts off at much lower load."""

    def test_feasible_load_all_priority_policies_near_zero(self):
        spec = video_symmetric_spec(0.5)
        ldf = run_simulation(spec, LDFPolicy(), 2500, seed=0)
        dbdp = run_simulation(spec, DBDPPolicy(), 2500, seed=0)
        assert ldf.total_deficiency() < 0.15
        assert dbdp.total_deficiency() < 0.5

    def test_fcsma_already_deficient_at_moderate_load(self):
        spec = video_symmetric_spec(0.5)
        fcsma = run_simulation(spec, FCSMAPolicy(), 1500, seed=0)
        dbdp = run_simulation(spec, DBDPPolicy(), 1500, seed=0)
        assert fcsma.total_deficiency() > 3 * max(dbdp.total_deficiency(), 0.15)

    def test_overload_ranking(self):
        """Beyond the boundary everyone is deficient, but the ordering is
        LDF <= DB-DP << FCSMA."""
        spec = video_symmetric_spec(0.8)
        ldf = run_simulation(spec, LDFPolicy(), 1200, seed=1).total_deficiency()
        dbdp = run_simulation(spec, DBDPPolicy(), 1200, seed=1).total_deficiency()
        fcsma = run_simulation(spec, FCSMAPolicy(), 1200, seed=1).total_deficiency()
        assert ldf <= dbdp + 0.5
        assert dbdp < fcsma
        assert fcsma > 1.5 * dbdp

    def test_dbdp_admissible_region_close_to_ldf(self):
        """The largest sustainable alpha under DB-DP is close to LDF's;
        FCSMA supports only ~70% of it (the paper's headline comparison)."""

        def max_alpha(policy_factory, threshold=0.5):
            sustained = 0.0
            for alpha in (0.3, 0.4, 0.45, 0.5, 0.55):
                spec = video_symmetric_spec(alpha)
                deficiency = run_simulation(
                    spec, policy_factory(), 1500, seed=2
                ).total_deficiency()
                if deficiency < threshold:
                    sustained = alpha
            return sustained

        ldf_max = max_alpha(LDFPolicy)
        dbdp_max = max_alpha(DBDPPolicy)
        fcsma_max = max_alpha(FCSMAPolicy)
        assert dbdp_max >= ldf_max - 0.11
        assert fcsma_max <= 0.85 * ldf_max


class TestFigure4Shape:
    """At fixed load, deficiency grows with the required delivery ratio."""

    def test_monotone_in_ratio(self):
        deficiencies = []
        for rho in (0.8, 0.99):
            spec = video_symmetric_spec(0.62, delivery_ratio=rho)
            deficiencies.append(
                run_simulation(spec, DBDPPolicy(), 1500, seed=3).total_deficiency()
            )
        assert deficiencies[1] >= deficiencies[0]


class TestFigure5Shape:
    """The lowest-initial-priority link converges under both policies."""

    def test_bottom_link_converges_to_requirement_neighborhood(self):
        spec = video_symmetric_spec(0.55, delivery_ratio=0.93)
        watched = spec.num_links - 1
        target = spec.requirements[watched]
        rate = spec.mean_rates[watched]
        for policy in (DBDPPolicy(), LDFPolicy()):
            result = run_simulation(spec, policy, 3000, seed=4)
            running = running_mean(result.deliveries[:, watched].astype(float))
            # Converges to at least the requirement (and at most the
            # arrival rate) despite starting at the lowest priority.
            assert running[-1] >= 0.97 * target, policy.name
            assert running[-1] <= rate + 1e-9, policy.name


class TestFigure6Shape:
    """Fixed priorities: throughput decreases with index, nobody starves."""

    def test_no_starvation_and_monotone_trend(self):
        spec = video_symmetric_spec(0.6)
        result = run_simulation(spec, StaticPriorityPolicy(), 2500, seed=5)
        throughput = result.timely_throughput()
        assert throughput.min() > 0.05  # the paper's no-starvation point
        assert throughput[:7].mean() > throughput[-7:].mean()
        # Priority service is unfair but not degenerate.
        assert 0.5 < jains_fairness_index(throughput) <= 1.0


class TestFigures78Shape:
    """Asymmetric groups: FCSMA starves the weak group; DB-DP does not."""

    @pytest.fixture(scope="class")
    def asymmetric(self):
        return video_asymmetric_spec(0.7, delivery_ratio=0.9)

    def test_dbdp_close_to_ldf_per_group(self, asymmetric):
        spec = asymmetric
        ldf = run_simulation(spec, LDFPolicy(), 2000, seed=6)
        dbdp = run_simulation(spec, DBDPPolicy(), 2000, seed=6)
        ldf_groups = group_deficiency(
            ldf.deliveries, spec.requirement_vector, ASYMMETRIC_GROUPS
        )
        dbdp_groups = group_deficiency(
            dbdp.deliveries, spec.requirement_vector, ASYMMETRIC_GROUPS
        )
        np.testing.assert_allclose(dbdp_groups, ldf_groups, atol=1.0)

    def test_fcsma_weak_group_suffers_disproportionately(self, asymmetric):
        spec = asymmetric
        fcsma = run_simulation(spec, FCSMAPolicy(), 1500, seed=6)
        dbdp = run_simulation(spec, DBDPPolicy(), 1500, seed=6)
        fcsma_groups = group_deficiency(
            fcsma.deliveries, spec.requirement_vector, ASYMMETRIC_GROUPS
        )
        dbdp_groups = group_deficiency(
            dbdp.deliveries, spec.requirement_vector, ASYMMETRIC_GROUPS
        )
        # Group 1 (weak channel) deficiency under FCSMA far exceeds DB-DP's.
        assert fcsma_groups[0] > dbdp_groups[0] + 0.5


class TestOverheadClaims:
    """Section IV-C: quantifiably small overhead, zero collisions."""

    def test_dbdp_overhead_within_quoted_bound(self):
        spec = video_symmetric_spec(0.55)
        result = run_simulation(spec, DBDPPolicy(), 800, seed=7)
        assert int(result.collisions.sum()) == 0
        bound = (
            21 * spec.timing.backoff_slot_us
            + 2 * spec.timing.empty_airtime_us
        )
        assert float(result.overhead_time_us.max()) <= bound + 1e-9
        # "1 or 2 fewer transmissions per interval": overhead under two
        # data airtimes.
        assert result.overhead_time_us.mean() < 2 * spec.timing.data_airtime_us

    def test_fcsma_overhead_is_substantial(self):
        spec = video_symmetric_spec(0.55)
        dbdp = run_simulation(spec, DBDPPolicy(), 600, seed=8)
        fcsma = run_simulation(spec, FCSMAPolicy(), 600, seed=8)
        assert (
            fcsma.overhead_time_us.mean() > 3 * dbdp.overhead_time_us.mean()
        )
