"""Stress and failure-injection tests.

Degenerate and extreme configurations: tiny/huge networks, near-zero
reliabilities, empty traffic, saturating bursts, determinism audits.  The
point is that nothing crashes, invariants hold, and metrics stay sane far
outside the paper's operating points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    BurstyVideoArrivals,
    ConstantArrivals,
    DBDPPolicy,
    FCSMAPolicy,
    LDFPolicy,
    NetworkSpec,
    idealized_timing,
    low_latency_timing,
    run_simulation,
)
from repro.core.permutations import is_priority_vector


class TestExtremeNetworks:
    def test_hundred_link_network_runs(self):
        """Far beyond the paper's 20 links: the protocol machinery scales."""
        n = 100
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(n, 0.3),
            channel=BernoulliChannel.symmetric(n, 0.8),
            timing=idealized_timing(50),
            delivery_ratios=0.9,
        )
        policy = DBDPPolicy()
        result = run_simulation(spec, policy, 150, seed=0)
        assert is_priority_vector(policy.priorities)
        assert np.all(result.deliveries <= result.arrivals)
        assert int(result.collisions.sum()) == 0

    def test_single_link_all_policies(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(1, 1),
            channel=BernoulliChannel.symmetric(1, 0.9),
            timing=idealized_timing(4),
            delivery_ratios=0.9,
        )
        for policy in (DBDPPolicy(), LDFPolicy(), FCSMAPolicy()):
            result = run_simulation(spec, policy, 300, seed=1)
            assert result.total_deficiency() < 0.05, policy.name

    def test_near_zero_reliability(self):
        """p = 0.01: almost nothing gets through; metrics remain bounded
        and deficiency approaches q."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(3, 1),
            channel=BernoulliChannel.symmetric(3, 0.01),
            timing=idealized_timing(5),
            delivery_ratios=0.9,
        )
        result = run_simulation(spec, DBDPPolicy(), 400, seed=2)
        deficiency = result.per_link_deficiency()
        assert np.all(deficiency <= 0.9 + 1e-9)
        assert result.total_deficiency() > 2.0  # hopeless requirement

    def test_zero_traffic_network(self):
        """No arrivals at all: nothing transmitted, zero deficiency
        (q = 0), priorities still churn via empty packets."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(4, 0.0001),
            channel=BernoulliChannel.symmetric(4, 0.9),
            timing=low_latency_timing(),
            delivery_ratios=0.0,
        )
        policy = DBDPPolicy()
        result = run_simulation(spec, policy, 400, seed=3)
        assert result.total_deficiency() == 0.0
        assert is_priority_vector(policy.priorities)

    def test_saturating_bursts(self):
        """A_max far above the interval budget: partial service, flushes,
        and bounded busy time every interval."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BurstyVideoArrivals.symmetric(4, 0.9, burst_max=30),
            channel=BernoulliChannel.symmetric(4, 0.7),
            timing=idealized_timing(10),
            delivery_ratios=0.2,
        )
        result = run_simulation(spec, DBDPPolicy(), 300, seed=4)
        assert np.all(result.busy_time_us <= spec.timing.interval_us + 1e-9)
        assert np.all(result.deliveries.sum(axis=1) <= 10)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory", [DBDPPolicy, LDFPolicy, FCSMAPolicy]
    )
    def test_same_seed_bitwise_identical(self, factory):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BurstyVideoArrivals.symmetric(6, 0.5),
            channel=BernoulliChannel.symmetric(6, 0.7),
            timing=idealized_timing(12),
            delivery_ratios=0.9,
        )
        a = run_simulation(spec, factory(), 200, seed=42)
        b = run_simulation(spec, factory(), 200, seed=42)
        np.testing.assert_array_equal(a.deliveries, b.deliveries)
        np.testing.assert_array_equal(a.attempts, b.attempts)
        np.testing.assert_array_equal(a.collisions, b.collisions)

    def test_policy_instances_do_not_leak_state(self):
        """Two sequential runs with fresh policies match exactly — binding
        resets everything."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(4, 0.6),
            channel=BernoulliChannel.symmetric(4, 0.8),
            timing=idealized_timing(6),
            delivery_ratios=0.8,
        )
        policy = DBDPPolicy()
        first = run_simulation(spec, policy, 100, seed=5)
        policy_reused = DBDPPolicy()
        second = run_simulation(spec, policy_reused, 100, seed=5)
        np.testing.assert_array_equal(first.deliveries, second.deliveries)


class TestLongRunStability:
    def test_dbdp_ten_thousand_intervals(self):
        """Long-horizon soak: bounded positive debts on a feasible net."""
        from repro import IntervalSimulator

        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(5, 0.7),
            channel=BernoulliChannel.symmetric(5, 0.8),
            timing=idealized_timing(8),
            delivery_ratios=0.9,
        )
        sim = IntervalSimulator(spec, DBDPPolicy(), seed=6)
        sim.run(10000)
        assert sim.result.total_deficiency() < 0.01
        assert sim.ledger.positive_debts.max() < 50
