"""Tests for channel models."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliChannel, GilbertElliottChannel


class TestBernoulliChannel:
    def test_reliabilities_exposed(self):
        channel = BernoulliChannel(success_probs=(0.5, 0.9))
        np.testing.assert_allclose(channel.reliabilities, [0.5, 0.9])
        assert channel.num_links == 2

    def test_rejects_zero_probability(self):
        """The paper requires p_n > 0."""
        with pytest.raises(ValueError):
            BernoulliChannel(success_probs=(0.5, 0.0))

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            BernoulliChannel(success_probs=(1.5,))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BernoulliChannel(success_probs=())

    def test_symmetric_builder(self):
        channel = BernoulliChannel.symmetric(5, 0.7)
        assert channel.num_links == 5
        assert set(channel.success_probs) == {0.7}

    def test_empirical_success_rate(self, rng):
        channel = BernoulliChannel(success_probs=(0.3, 0.8))
        for link, p in [(0, 0.3), (1, 0.8)]:
            wins = sum(channel.attempt(link, rng) for _ in range(5000))
            assert wins / 5000 == pytest.approx(p, abs=0.02)

    def test_perfect_channel_always_succeeds(self, rng):
        channel = BernoulliChannel.symmetric(1, 1.0)
        assert all(channel.attempt(0, rng) for _ in range(100))


class TestGilbertElliottChannel:
    def test_stationary_reliability(self):
        channel = GilbertElliottChannel(
            2, p_good=1.0, p_bad=0.0, p_stay_good=0.9, p_stay_bad=0.9
        )
        # pi_good = 0.5 -> stationary success probability 0.5.
        np.testing.assert_allclose(channel.reliabilities, [0.5, 0.5])

    def test_empirical_long_run_rate(self, rng):
        channel = GilbertElliottChannel(
            1, p_good=0.9, p_bad=0.1, p_stay_good=0.8, p_stay_bad=0.6
        )
        expected = channel.reliabilities[0]
        wins = sum(channel.attempt(0, rng) for _ in range(20000))
        assert wins / 20000 == pytest.approx(expected, abs=0.02)

    def test_burstiness(self, rng):
        """Consecutive outcomes must be positively correlated (the point of
        the model)."""
        channel = GilbertElliottChannel(
            1, p_good=0.95, p_bad=0.05, p_stay_good=0.95, p_stay_bad=0.95
        )
        outcomes = np.array(
            [channel.attempt(0, rng) for _ in range(20000)], dtype=float
        )
        correlation = np.corrcoef(outcomes[:-1], outcomes[1:])[0, 1]
        assert correlation > 0.3

    def test_per_link_state_is_independent(self, rng):
        channel = GilbertElliottChannel(
            2, p_good=1.0, p_bad=0.0, p_stay_good=1.0, p_stay_bad=1.0
        )
        # Both start GOOD and never leave: always succeed, both links.
        assert channel.attempt(0, rng) and channel.attempt(1, rng)

    def test_link_index_validated(self, rng):
        channel = GilbertElliottChannel(2)
        with pytest.raises(IndexError):
            channel.attempt(5, rng)

    def test_rejects_all_zero_success(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(1, p_good=0.0, p_bad=0.0)
