"""Tests for channel models."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliChannel, GilbertElliottChannel
from repro.core import registry
from repro.phy.channel import TimeVaryingReliability, channel_from_spec


class TestBernoulliChannel:
    def test_reliabilities_exposed(self):
        channel = BernoulliChannel(success_probs=(0.5, 0.9))
        np.testing.assert_allclose(channel.reliabilities, [0.5, 0.9])
        assert channel.num_links == 2

    def test_rejects_zero_probability(self):
        """The paper requires p_n > 0."""
        with pytest.raises(ValueError):
            BernoulliChannel(success_probs=(0.5, 0.0))

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            BernoulliChannel(success_probs=(1.5,))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BernoulliChannel(success_probs=())

    def test_symmetric_builder(self):
        channel = BernoulliChannel.symmetric(5, 0.7)
        assert channel.num_links == 5
        assert set(channel.success_probs) == {0.7}

    def test_empirical_success_rate(self, rng):
        channel = BernoulliChannel(success_probs=(0.3, 0.8))
        for link, p in [(0, 0.3), (1, 0.8)]:
            wins = sum(channel.attempt(link, rng) for _ in range(5000))
            assert wins / 5000 == pytest.approx(p, abs=0.02)

    def test_perfect_channel_always_succeeds(self, rng):
        channel = BernoulliChannel.symmetric(1, 1.0)
        assert all(channel.attempt(0, rng) for _ in range(100))

    def test_capabilities_are_memoryless(self):
        channel = BernoulliChannel.symmetric(2, 0.5)
        assert not channel.has_state
        assert not channel.state_uses_rng
        assert channel.iid_within_interval
        assert channel.with_stationary_reliability() is channel

    def test_take_links_slices_and_pads(self):
        channel = BernoulliChannel(success_probs=(0.3, 0.6, 0.9))
        cell = channel.take_links((2, 0), pad=2)
        assert cell.success_probs == (0.9, 0.3, 1.0, 1.0)


class TestGilbertElliottChannel:
    def test_stationary_reliability(self):
        channel = GilbertElliottChannel(
            2, p_good=1.0, p_bad=0.0, p_stay_good=0.9, p_stay_bad=0.9
        )
        # pi_good = 0.5 -> stationary success probability 0.5.
        np.testing.assert_allclose(channel.reliabilities, [0.5, 0.5])

    def test_empirical_long_run_rate(self, rng):
        channel = GilbertElliottChannel(
            1, p_good=0.9, p_bad=0.1, p_stay_good=0.8, p_stay_bad=0.6
        )
        expected = channel.reliabilities[0]
        wins = 0
        for _ in range(20000):
            channel.begin_interval(rng)
            wins += channel.attempt(0, rng)
        assert wins / 20000 == pytest.approx(expected, abs=0.02)

    def test_burstiness(self, rng):
        """Per-interval outcomes must be positively correlated (the point
        of the model)."""
        channel = GilbertElliottChannel(
            1, p_good=0.95, p_bad=0.05, p_stay_good=0.95, p_stay_bad=0.95
        )
        outcomes = []
        for _ in range(20000):
            channel.begin_interval(rng)
            outcomes.append(channel.attempt(0, rng))
        outcomes = np.asarray(outcomes, dtype=float)
        correlation = np.corrcoef(outcomes[:-1], outcomes[1:])[0, 1]
        assert correlation > 0.3

    def test_attempts_iid_within_interval(self, rng):
        """Between begin_interval calls the state is frozen: every attempt
        sees the same success probability (what lets the batch engine
        pre-draw geometric retry counts)."""
        channel = GilbertElliottChannel(
            1, p_good=1.0, p_bad=0.0, p_stay_good=0.5, p_stay_bad=0.5
        )
        assert channel.iid_within_interval
        for _ in range(50):
            channel.begin_interval(rng)
            p = channel.success_prob(0)
            outcomes = {channel.attempt(0, rng) for _ in range(20)}
            assert outcomes == {p == 1.0}

    def test_per_link_state_is_independent(self, rng):
        channel = GilbertElliottChannel(
            2, p_good=1.0, p_bad=0.0, p_stay_good=1.0, p_stay_bad=1.0
        )
        # Both start GOOD and never leave: always succeed, both links.
        channel.begin_interval(rng)
        assert channel.attempt(0, rng) and channel.attempt(1, rng)

    def test_reset_state_restores_all_good(self, rng):
        channel = GilbertElliottChannel(
            3, p_good=1.0, p_bad=0.0, p_stay_good=0.0, p_stay_bad=1.0
        )
        channel.begin_interval(rng)  # leaves GOOD with certainty
        assert channel.current_probs().max() == 0.0
        channel.reset_state()
        np.testing.assert_allclose(channel.current_probs(), 1.0)

    def test_link_index_validated(self, rng):
        channel = GilbertElliottChannel(2)
        with pytest.raises(IndexError):
            channel.attempt(5, rng)

    def test_rejects_all_zero_success(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(1, p_good=0.0, p_bad=0.0)

    def test_per_link_parameter_tuples(self):
        channel = GilbertElliottChannel(
            2, p_good=(0.9, 0.8), p_bad=0.1, p_stay_good=(0.9, 0.5)
        )
        assert channel.p_good == (0.9, 0.8)
        r = channel.reliabilities
        assert r[0] != r[1]

    def test_supports_batch_state_needs_positive_probs(self):
        ok = GilbertElliottChannel(1, p_good=0.9, p_bad=0.2)
        assert ok.supports_batch_state
        degenerate = GilbertElliottChannel(1, p_good=0.9, p_bad=0.0)
        assert degenerate.has_state and not degenerate.supports_batch_state

    def test_take_links_pads_frozen_good(self, rng):
        channel = GilbertElliottChannel(
            3, p_good=(0.9, 0.8, 0.7), p_bad=0.2, p_stay_bad=(0.6, 0.7, 0.8)
        )
        cell = channel.take_links((1,), pad=1)
        assert cell.p_good == (0.8, 1.0)
        assert cell.p_stay_bad == (0.7, 0.0)
        for _ in range(30):
            cell.begin_interval(rng)
            assert cell.attempt(1, rng)  # the pad always delivers

    def test_batch_state_matches_scalar_distribution(self):
        """One batch row evolved with the same uniforms as the scalar
        channel visits the same states."""
        channel = GilbertElliottChannel(
            2, p_good=0.9, p_bad=0.2, p_stay_good=0.8, p_stay_bad=0.6
        )
        state = channel.init_state_batch(1)
        scalar = GilbertElliottChannel(
            2, p_good=0.9, p_bad=0.2, p_stay_good=0.8, p_stay_bad=0.6
        )
        for k in range(200):
            plane = channel.evolve_batch(state, np.random.default_rng(k))
            scalar.begin_interval(np.random.default_rng(k))
            np.testing.assert_allclose(plane[0], scalar.current_probs())


class TestTimeVaryingReliability:
    def test_profiles_stay_in_bounds(self):
        for profile in ("ramp", "duty", "drift"):
            ch = TimeVaryingReliability.symmetric(
                3, 0.9, profile=profile, period=40, amplitude=0.5, floor=0.1
            )
            for k in range(100):
                probs = ch.probs_at(k)
                assert np.all(probs >= 0.1) and np.all(probs <= 1.0)

    def test_schedule_is_periodic_and_deterministic(self):
        ch = TimeVaryingReliability.symmetric(2, 0.8, period=25)
        np.testing.assert_array_equal(ch.probs_at(3), ch.probs_at(28))
        assert not ch.state_uses_rng and ch.has_state

    def test_begin_interval_walks_the_schedule(self):
        ch = TimeVaryingReliability.symmetric(
            1, 0.9, profile="ramp", period=10, amplitude=0.5
        )
        seen = []
        for _ in range(10):
            ch.begin_interval(None)
            seen.append(ch.success_prob(0))
        ch.reset_state()
        ch.begin_interval(None)
        assert ch.success_prob(0) == seen[0]
        assert len(set(seen)) > 1

    def test_reliabilities_are_schedule_mean(self):
        ch = TimeVaryingReliability.symmetric(
            1, 0.9, profile="duty", period=10, amplitude=0.4
        )
        mean = np.mean([ch.probs_at(k)[0] for k in range(10)])
        assert ch.reliabilities[0] == pytest.approx(mean)

    def test_with_stationary_reliability(self):
        ch = TimeVaryingReliability.symmetric(2, 0.9, amplitude=0.2)
        flat = ch.with_stationary_reliability()
        assert isinstance(flat, BernoulliChannel)
        np.testing.assert_allclose(flat.success_probs, ch.reliabilities)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeVaryingReliability.symmetric(1, 0.9, profile="sawtooth")
        with pytest.raises(ValueError):
            TimeVaryingReliability.symmetric(1, 0.9, period=0)
        with pytest.raises(ValueError):
            TimeVaryingReliability.symmetric(1, 0.9, amplitude=1.5)


class TestChannelCodec:
    """Channel configs ride the registry codec, like policy configs."""

    @pytest.mark.parametrize(
        "channel",
        [
            BernoulliChannel(success_probs=(0.5, 0.9)),
            GilbertElliottChannel(
                2, p_good=(0.9, 0.8), p_bad=0.2, p_stay_good=0.9,
                p_stay_bad=0.7,
            ),
            TimeVaryingReliability.symmetric(
                2, 0.9, profile="duty", period=30, amplitude=0.3
            ),
        ],
    )
    def test_round_trip(self, channel):
        encoded = registry.encode_config_value(channel)
        decoded = registry.decode_config_value(encoded)
        assert decoded == channel

    def test_mutable_state_is_not_part_of_identity(self, rng):
        a = GilbertElliottChannel(2, p_stay_good=0.5, p_stay_bad=0.5)
        b = GilbertElliottChannel(2, p_stay_good=0.5, p_stay_bad=0.5)
        for _ in range(20):
            a.begin_interval(rng)
        assert a == b
        assert registry.encode_config_value(a) == registry.encode_config_value(b)


class TestChannelFromSpec:
    def test_bernoulli(self):
        ch = channel_from_spec("bernoulli:0.8", 3)
        assert ch == BernoulliChannel.symmetric(3, 0.8)

    def test_gilbert_elliott(self):
        ch = channel_from_spec("ge:0.1:0.3", 2)
        assert ch == GilbertElliottChannel(
            2, p_good=0.95, p_bad=0.2, p_stay_good=0.9, p_stay_bad=0.7
        )

    def test_gilbert_elliott_with_probs(self):
        ch = channel_from_spec("ge:0.05:0.5:0.99:0.1", 1)
        assert ch.p_stay_good == 0.95 and ch.p_stay_bad == 0.5
        assert ch.p_good == 0.99 and ch.p_bad == 0.1

    def test_time_varying(self):
        ch = channel_from_spec("tv:drift:50:0.2", 2)
        assert isinstance(ch, TimeVaryingReliability)
        assert ch.profile == "drift" and ch.period == 50

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown channel kind"):
            channel_from_spec("rayleigh:0.5", 1)
