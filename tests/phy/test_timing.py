"""Tests for 802.11a airtime computation and interval timing."""

from __future__ import annotations

import pytest

from repro import Dot11aPhy, IntervalTiming, idealized_timing, low_latency_timing, video_timing


class TestDot11aPhy:
    def test_video_packet_airtime_matches_paper(self):
        """Paper: 1500 B + ACK + spacing ~ 330 us at 54 Mbps."""
        assert Dot11aPhy().exchange_airtime_us(1500) == pytest.approx(330.0, abs=5)

    def test_control_packet_airtime_matches_paper(self):
        """Paper: 100 B + ACK ~ 120 us."""
        assert Dot11aPhy().exchange_airtime_us(100) == pytest.approx(120.0, abs=5)

    def test_empty_packet_airtime_matches_paper(self):
        """Paper: no-payload frame + spacing ~ 70 us."""
        assert Dot11aPhy().empty_packet_airtime_us() == pytest.approx(70.0, abs=8)

    def test_airtime_monotone_in_payload(self):
        phy = Dot11aPhy()
        airtimes = [phy.exchange_airtime_us(b) for b in (0, 100, 500, 1500)]
        assert all(b >= a for a, b in zip(airtimes, airtimes[1:]))

    def test_symbol_quantization(self):
        """Airtimes are preamble + signal + whole OFDM symbols."""
        phy = Dot11aPhy()
        frame = phy.data_frame_airtime_us(1500)
        symbols = (frame - phy.phy_preamble_us - phy.phy_signal_us) / phy.symbol_us
        assert symbols == int(symbols)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Dot11aPhy().data_frame_airtime_us(-1)

    def test_slot_time_is_9us(self):
        assert Dot11aPhy().slot_time_us == 9.0


class TestIntervalTiming:
    def test_video_transmissions_per_interval(self):
        """Paper: up to 60 transmissions per 20 ms interval under LDF."""
        assert video_timing().max_transmissions == 60

    def test_low_latency_transmissions_per_interval(self):
        """Paper: 16 available transmissions per 2 ms interval."""
        assert low_latency_timing().max_transmissions == 16

    def test_idealized(self):
        timing = idealized_timing(7)
        assert timing.max_transmissions == 7
        assert timing.is_idealized
        assert not video_timing().is_idealized

    def test_idealized_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            idealized_timing(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalTiming(
                interval_us=0,
                data_airtime_us=10,
                empty_airtime_us=0,
                backoff_slot_us=0,
            )
        with pytest.raises(ValueError, match="does not fit"):
            IntervalTiming(
                interval_us=5,
                data_airtime_us=10,
                empty_airtime_us=0,
                backoff_slot_us=0,
            )
        with pytest.raises(ValueError):
            IntervalTiming(
                interval_us=100,
                data_airtime_us=10,
                empty_airtime_us=-1,
                backoff_slot_us=0,
            )

    def test_with_slot_time(self):
        """Ablation hook: WiFi-Nano style 0.8 us slots ([36])."""
        nano = video_timing().with_slot_time(0.8)
        assert nano.backoff_slot_us == 0.8
        assert nano.data_airtime_us == video_timing().data_airtime_us

    def test_swap_safety_margin(self):
        """The swap-commit rule's correctness argument needs
        data_airtime >= empty_airtime + slot for all shipped timings."""
        for timing in (video_timing(), low_latency_timing(), idealized_timing(5)):
            assert (
                timing.data_airtime_us
                >= timing.empty_airtime_us + timing.backoff_slot_us
            )
