"""Property-based tests: the backoff assignment is always collision-free.

This is the protocol's central safety property (Section IV-C, "no capacity
loss due to collision") — hypothesis searches the full space of
(permutation, candidate set, coin flips).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp_protocol import compute_backoffs


@st.composite
def protocol_configurations(draw):
    """(sigma, candidates, xi) with valid non-consecutive candidate pairs."""
    n = draw(st.integers(min_value=2, max_value=10))
    sigma = tuple(draw(st.permutations(range(1, n + 1))))
    max_pairs = n // 2
    num_pairs = draw(st.integers(min_value=1, max_value=max_pairs))
    # Choose non-consecutive candidate indices in [1, n - 1].
    available = list(range(1, n))
    candidates = []
    for _ in range(num_pairs):
        viable = [
            c
            for c in available
            if all(abs(c - chosen) >= 2 for chosen in candidates)
        ]
        if not viable:
            break
        candidates.append(draw(st.sampled_from(viable)))
    candidates.sort()
    xi = {}
    for c in candidates:
        xi[sigma.index(c)] = draw(st.sampled_from([-1, 1]))
        xi[sigma.index(c + 1)] = draw(st.sampled_from([-1, 1]))
    return sigma, tuple(candidates), xi


@given(protocol_configurations())
@settings(max_examples=300, deadline=None)
def test_backoffs_are_always_distinct(config):
    sigma, candidates, xi = config
    backoffs = compute_backoffs(sigma, candidates, xi)
    values = list(backoffs.values())
    assert len(set(values)) == len(values), (
        f"collision for sigma={sigma} candidates={candidates} xi={xi}: "
        f"{backoffs}"
    )


@given(protocol_configurations())
@settings(max_examples=300, deadline=None)
def test_backoffs_are_bounded(config):
    """beta_n <= N + 2 P - 1 <= 2 N; with one pair, beta_n <= N + 1."""
    sigma, candidates, xi = config
    n = len(sigma)
    backoffs = compute_backoffs(sigma, candidates, xi)
    assert all(0 <= b <= n + 2 * len(candidates) - 1 for b in backoffs.values())
    if len(candidates) == 1:
        assert max(backoffs.values()) <= n + 1


@given(protocol_configurations())
@settings(max_examples=300, deadline=None)
def test_transmission_order_respects_non_candidate_priorities(config):
    """Among non-candidates, the backoff order preserves the priority
    order — reordering only ever touches the candidate pair."""
    sigma, candidates, xi = config
    backoffs = compute_backoffs(sigma, candidates, xi)
    cand_priorities = set()
    for c in candidates:
        cand_priorities.add(c)
        cand_priorities.add(c + 1)
    non_candidates = [
        link for link, s in enumerate(sigma) if s not in cand_priorities
    ]
    ordered = sorted(non_candidates, key=lambda l: backoffs[l])
    priorities = [sigma[l] for l in ordered]
    assert priorities == sorted(priorities)


@given(protocol_configurations())
@settings(max_examples=200, deadline=None)
def test_candidate_backoffs_stay_inside_their_band(config):
    """Pair (c, c+1) with offset o occupies backoffs within
    [c - 1 + o, c + 2 + o] — disjoint from every other band."""
    sigma, candidates, xi = config
    backoffs = compute_backoffs(sigma, candidates, xi)
    for pair_index, c in enumerate(candidates):
        offset = 2 * pair_index
        for link in (sigma.index(c), sigma.index(c + 1)):
            assert c - 1 + offset <= backoffs[link] <= c + 2 + offset
