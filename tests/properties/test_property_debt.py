"""Property-based tests for debt bookkeeping identities."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.debt import DebtLedger
from repro.analysis.metrics import deficiency_series, total_deficiency


@st.composite
def debt_traces(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    k = draw(st.integers(min_value=1, max_value=40))
    q = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    deliveries = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=6), min_size=n, max_size=n
            ),
            min_size=k,
            max_size=k,
        )
    )
    return q, np.asarray(deliveries)


@given(debt_traces())
@settings(max_examples=200, deadline=None)
def test_debt_closed_form(trace):
    """d_n(K) == K q_n - sum deliveries, for any trace."""
    q, deliveries = trace
    ledger = DebtLedger(q)
    for row in deliveries:
        ledger.record_interval(row)
    expected = deliveries.shape[0] * np.asarray(q) - deliveries.sum(axis=0)
    np.testing.assert_allclose(ledger.debts, expected, atol=1e-9)


@given(debt_traces())
@settings(max_examples=200, deadline=None)
def test_deficiency_is_positive_debt_over_k(trace):
    """Definition 1's deficiency equals d^+(K) / K."""
    q, deliveries = trace
    ledger = DebtLedger(q)
    for row in deliveries:
        ledger.record_interval(row)
    k = deliveries.shape[0]
    np.testing.assert_allclose(
        ledger.per_link_deficiency(),
        np.maximum(ledger.debts, 0.0) / k,
        atol=1e-9,
    )


@given(debt_traces())
@settings(max_examples=150, deadline=None)
def test_ledger_and_metrics_module_agree(trace):
    q, deliveries = trace
    ledger = DebtLedger(q)
    for row in deliveries:
        ledger.record_interval(row)
    assert np.isclose(
        ledger.total_deficiency(), total_deficiency(deliveries, q), atol=1e-9
    )
    series = deficiency_series(deliveries, q)
    assert np.isclose(series[-1], ledger.total_deficiency(), atol=1e-9)


@given(debt_traces())
@settings(max_examples=150, deadline=None)
def test_deficiency_bounded_by_requirements(trace):
    """0 <= deficiency_n <= q_n always."""
    q, deliveries = trace
    ledger = DebtLedger(q)
    for row in deliveries:
        ledger.record_interval(row)
    deficiency = ledger.per_link_deficiency()
    assert np.all(deficiency >= 0)
    assert np.all(deficiency <= np.asarray(q) + 1e-9)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=1, max_value=30),
)
@settings(max_examples=100, deadline=None)
def test_full_service_drives_deficiency_to_zero(q, k):
    """Delivering ceil(q_n) every interval fulfills any requirement."""
    ledger = DebtLedger(q)
    service = np.ceil(np.asarray(q)).astype(int)
    for _ in range(k):
        ledger.record_interval(service)
    assert ledger.total_deficiency() == 0.0
