"""Property-based cross-engine fuzzing.

Hypothesis generates random small networks; the interval engine and the
microsecond event engine must agree on aggregate delivery statistics and
never violate protocol invariants.  This is the fuzzing counterpart of the
fixed-scenario cross-engine tests.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    ConstantSwapBias,
    DPProtocol,
    NetworkSpec,
    low_latency_timing,
    run_simulation,
)
from repro.core.permutations import is_priority_vector
from repro.sim.event_sim import EventDrivenDPSimulator


@st.composite
def small_networks(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    rate = draw(st.floats(min_value=0.1, max_value=0.9, allow_nan=False))
    p = draw(st.floats(min_value=0.3, max_value=1.0, allow_nan=False))
    rho = draw(st.floats(min_value=0.1, max_value=0.9, allow_nan=False))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    spec = NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(n, rate),
        channel=BernoulliChannel.symmetric(n, p),
        timing=low_latency_timing(),
        delivery_ratios=rho,
    )
    return spec, seed


@given(small_networks(), st.floats(min_value=0.2, max_value=0.8))
@settings(max_examples=15, deadline=None)
def test_engines_agree_and_stay_sound(network, mu):
    spec, seed = network
    intervals = 250

    event = EventDrivenDPSimulator(
        spec, bias=ConstantSwapBias(mu), seed=seed
    )
    event_result = event.run(intervals)
    assert is_priority_vector(event.priorities)
    assert np.all(event_result.deliveries <= event_result.arrivals)
    assert np.all(
        event_result.busy_time_us <= spec.timing.interval_us + 1e-9
    )

    policy = DPProtocol(bias=ConstantSwapBias(mu))
    interval_result = run_simulation(spec, policy, intervals, seed=seed)
    assert is_priority_vector(policy.priorities)

    # Identical arrival streams (same named RNG stream and seed).
    np.testing.assert_array_equal(
        event_result.arrivals, interval_result.arrivals
    )
    # Aggregate service statistics agree within sampling noise; with the
    # same arrivals the delivery totals are tightly coupled.
    total_arrived = event_result.arrivals.sum()
    gap = abs(
        int(event_result.deliveries.sum())
        - int(interval_result.deliveries.sum())
    )
    assert gap <= max(0.08 * total_arrived, 25)
