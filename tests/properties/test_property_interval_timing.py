"""Property-based tests for interval timing and PHY airtime arithmetic."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dot11aPhy, IntervalTiming, idealized_timing


@given(st.integers(min_value=0, max_value=4000))
@settings(max_examples=200, deadline=None)
def test_airtime_symbol_quantization(payload):
    """Every frame airtime is preamble + signal + whole symbols."""
    phy = Dot11aPhy()
    frame = phy.data_frame_airtime_us(payload)
    symbols = (frame - phy.phy_preamble_us - phy.phy_signal_us) / phy.symbol_us
    assert symbols == int(symbols)
    assert symbols >= 1


@given(st.integers(min_value=0, max_value=4000), st.integers(min_value=0, max_value=4000))
@settings(max_examples=200, deadline=None)
def test_airtime_monotone(a, b):
    phy = Dot11aPhy()
    low, high = sorted((a, b))
    assert phy.exchange_airtime_us(low) <= phy.exchange_airtime_us(high)


@given(
    st.floats(min_value=100.0, max_value=100000.0, allow_nan=False),
    st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_max_transmissions_consistency(interval_us, airtime_us):
    """floor(interval / airtime) transmissions always fit; one more never
    does."""
    if airtime_us > interval_us:
        return  # the constructor rejects these (covered by unit tests)
    timing = IntervalTiming(
        interval_us=interval_us,
        data_airtime_us=airtime_us,
        empty_airtime_us=0.0,
        backoff_slot_us=0.0,
    )
    k = timing.max_transmissions
    assert k * airtime_us <= interval_us + 1e-6
    assert (k + 1) * airtime_us > interval_us - 1e-6


@given(st.integers(min_value=1, max_value=500))
@settings(max_examples=100, deadline=None)
def test_idealized_timing_identities(t):
    timing = idealized_timing(t)
    assert timing.max_transmissions == t
    assert timing.is_idealized
    # Slot-time override keeps airtimes intact.
    nano = timing.with_slot_time(0.8)
    assert nano.data_airtime_us == timing.data_airtime_us
    assert not nano.is_idealized
