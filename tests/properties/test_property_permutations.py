"""Property-based tests for permutation algebra."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.permutations import (
    apply_adjacent_swap,
    inversions,
    is_adjacent_transposition,
    is_priority_vector,
    link_order_to_priorities,
    priority_to_link_order,
    symmetric_difference,
)


def permutations_of(n_min=1, n_max=8):
    return st.integers(min_value=n_min, max_value=n_max).flatmap(
        lambda n: st.permutations(list(range(1, n + 1)))
    )


@given(permutations_of())
@settings(max_examples=200, deadline=None)
def test_round_trip_conversion(sigma):
    sigma = tuple(sigma)
    assert link_order_to_priorities(priority_to_link_order(sigma)) == sigma


@given(permutations_of(n_min=2))
@settings(max_examples=200, deadline=None)
def test_adjacent_swap_properties(sigma):
    sigma = tuple(sigma)
    n = len(sigma)
    for c in range(1, n):
        swapped = apply_adjacent_swap(sigma, c)
        assert is_priority_vector(swapped)
        assert is_adjacent_transposition(sigma, swapped)
        assert len(symmetric_difference(sigma, swapped)) == 2
        # Involution.
        assert apply_adjacent_swap(swapped, c) == sigma


@given(permutations_of(n_min=2))
@settings(max_examples=200, deadline=None)
def test_adjacent_swap_changes_inversions_by_exactly_one(sigma):
    sigma = tuple(sigma)
    for c in range(1, len(sigma)):
        swapped = apply_adjacent_swap(sigma, c)
        assert abs(inversions(swapped) - inversions(sigma)) == 1


@given(permutations_of())
@settings(max_examples=100, deadline=None)
def test_inversions_bounds(sigma):
    sigma = tuple(sigma)
    n = len(sigma)
    assert 0 <= inversions(sigma) <= n * (n - 1) // 2


@given(permutations_of(n_min=2), st.randoms())
@settings(max_examples=100, deadline=None)
def test_symmetric_difference_is_symmetric(sigma, rnd):
    sigma = tuple(sigma)
    shuffled = list(sigma)
    rnd.shuffle(shuffled)
    shuffled = tuple(shuffled)
    assert symmetric_difference(sigma, shuffled) == symmetric_difference(
        shuffled, sigma
    )
