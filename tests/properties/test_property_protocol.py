"""Property-based end-to-end protocol invariants under random scenarios."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    ConstantSwapBias,
    DBDPPolicy,
    DPProtocol,
    IntervalSimulator,
    NetworkSpec,
    idealized_timing,
)
from repro.core.permutations import is_priority_vector


@st.composite
def random_networks(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    slots = draw(st.integers(min_value=1, max_value=10))
    rates = [
        draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
        for _ in range(n)
    ]
    ps = [
        draw(st.floats(min_value=0.1, max_value=1.0, allow_nan=False))
        for _ in range(n)
    ]
    rhos = [
        draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        for _ in range(n)
    ]
    spec = NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals(rates=tuple(rates)),
        channel=BernoulliChannel(success_probs=tuple(ps)),
        timing=idealized_timing(slots),
        delivery_ratios=rhos,
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return spec, seed


@given(random_networks())
@settings(max_examples=40, deadline=None)
def test_dbdp_invariants_hold_on_any_network(network):
    """For arbitrary feasible-or-not networks: sigma stays a permutation,
    deliveries never exceed arrivals, collisions never happen."""
    spec, seed = network
    policy = DBDPPolicy()
    sim = IntervalSimulator(spec, policy, seed=seed)
    for _ in range(60):
        sim.step()
        assert is_priority_vector(policy.priorities)
    result = sim.result
    assert np.all(result.deliveries <= result.arrivals)
    assert int(result.collisions.sum()) == 0
    assert np.all(result.busy_time_us <= spec.timing.interval_us + 1e-9)


@given(random_networks(), st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=30, deadline=None)
def test_generic_dp_invariants(network, mu):
    spec, seed = network
    policy = DPProtocol(bias=ConstantSwapBias(mu))
    sim = IntervalSimulator(spec, policy, seed=seed)
    sim.run(50)
    assert is_priority_vector(policy.priorities)
    assert np.all(sim.result.deliveries <= sim.result.arrivals)


@given(random_networks())
@settings(max_examples=25, deadline=None)
def test_ledger_identity_on_any_run(network):
    spec, seed = network
    sim = IntervalSimulator(spec, DBDPPolicy(), seed=seed)
    sim.run(40)
    expected = 40 * spec.requirement_vector - sim.result.deliveries.sum(axis=0)
    np.testing.assert_allclose(sim.ledger.debts, expected, atol=1e-9)
