"""Property-based tests for the shared service primitive and arrivals."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BernoulliChannel
from repro.core.policies import serve_link_attempts
from repro.traffic.arrivals import (
    BernoulliArrivals,
    BurstyVideoArrivals,
    TruncatedPoissonArrivals,
)


@given(
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=0, max_value=20),
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=300, deadline=None)
def test_serve_respects_bounds(packets, budget, p, seed):
    """delivered <= packets, delivered <= attempts <= budget, and a full
    delivery never uses fewer attempts than packets."""
    channel = BernoulliChannel.symmetric(1, p)
    rng = np.random.default_rng(seed)
    delivered, attempts = serve_link_attempts(0, packets, budget, channel, rng)
    assert 0 <= delivered <= packets
    assert delivered <= attempts <= budget
    if delivered == packets and packets > 0:
        assert attempts >= packets
    if delivered < packets and budget > 0 and packets > 0:
        # Ran out of budget: every attempt was used.
        assert attempts == budget


@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.3, max_value=1.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=100, deadline=None)
def test_serve_monotone_in_budget(packets, p, seed):
    """More budget can only help (statistically exact per-seed because the
    geometric draws are identical for the same generator state)."""
    channel = BernoulliChannel.symmetric(1, p)
    small = serve_link_attempts(
        0, packets, 3, channel, np.random.default_rng(seed)
    )[0]
    large = serve_link_attempts(
        0, packets, 30, channel, np.random.default_rng(seed)
    )[0]
    assert large >= small


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=50, deadline=None)
def test_arrival_processes_respect_their_bounds(seed):
    rng = np.random.default_rng(seed)
    processes = [
        BernoulliArrivals.symmetric(4, 0.6),
        BurstyVideoArrivals.symmetric(4, 0.7),
        TruncatedPoissonArrivals(poisson_rates=(2.0,) * 4, cap=5),
    ]
    for process in processes:
        sample = process.sample(rng)
        assert sample.shape == (4,)
        assert np.all(sample >= 0)
        assert np.all(sample <= process.max_per_link)


@given(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=100, deadline=None)
def test_bursty_mean_formula(alpha, seed):
    """lambda = 3.5 alpha for any alpha (the paper's Section VI-A model)."""
    process = BurstyVideoArrivals.symmetric(2, alpha)
    np.testing.assert_allclose(process.mean_rates, 3.5 * alpha)
