"""Property-based tests: Proposition 2 holds for random biases."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.markov import build_sigma_chain, detailed_balance_residual
from repro.analysis.stationary import stationary_distribution

mus_strategy = st.integers(min_value=2, max_value=4).flatmap(
    lambda n: st.lists(
        st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
        min_size=n,
        max_size=n,
    )
)


@given(mus_strategy)
@settings(max_examples=60, deadline=None)
def test_closed_form_is_stationary(mus):
    """pi X == pi for the product-form pi of Eq. (10)."""
    chain = build_sigma_chain(tuple(mus))
    closed = stationary_distribution(tuple(mus))
    pi = np.array([closed[s] for s in chain.states])
    np.testing.assert_allclose(pi @ chain.matrix, pi, atol=1e-12)


@given(mus_strategy)
@settings(max_examples=60, deadline=None)
def test_reversibility(mus):
    chain = build_sigma_chain(tuple(mus))
    closed = stationary_distribution(tuple(mus))
    pi = np.array([closed[s] for s in chain.states])
    assert detailed_balance_residual(chain, pi) < 1e-12


@given(mus_strategy)
@settings(max_examples=60, deadline=None)
def test_chain_is_ergodic(mus):
    """Lemma 4 for arbitrary biases in (0, 1)."""
    chain = build_sigma_chain(tuple(mus))
    assert chain.is_irreducible()
    assert chain.is_aperiodic()


@given(mus_strategy, st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_stationary_independent_of_handshake_scale(mus, scale):
    """Damping every transition by the same handshake probability changes
    the dynamics but not the stationary distribution."""
    plain = build_sigma_chain(tuple(mus))
    damped = build_sigma_chain(tuple(mus), handshake=lambda s, c: scale)
    np.testing.assert_allclose(
        plain.stationary(), damped.stationary(), atol=1e-10
    )
