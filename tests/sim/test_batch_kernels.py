"""Tests for the vectorized per-interval batch kernels.

The batch engine's correctness hinges on two closed forms: the staircase
service solver (attempts/deliveries under a non-increasing cap) and the DP
kernel's assume-fit/verify empty-packet coupling.  Both are checked here
against brute-force sequential references on shared inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    DBDPPolicy,
    FCSMAPolicy,
    GilbertElliottChannel,
    LDFPolicy,
    NetworkSpec,
    RoundRobinPolicy,
    idealized_timing,
)
from repro.experiments.configs import video_symmetric_spec
from repro.sim.batch_kernels import (
    DRAW_CHUNK,
    BatchDPKernel,
    _ChunkedChannelDraws,
    _ChunkedUniforms,
    drain_totals,
    has_batch_kernel,
    make_batch_kernel,
    solve_ordered_service,
)
from repro.sim.batch_sim import BatchIntervalSimulator


def naive_ordered_service(order, backlog, needed_cum, caps):
    """Reference: serve links one at a time, exactly like the scalar loop."""
    S, N = order.shape
    delivered = np.zeros((S, N), dtype=np.int64)
    attempts = np.zeros((S, N), dtype=np.int64)
    for s in range(S):
        used = 0
        for j in range(N):
            link = int(order[s, j])
            b = int(backlog[s, link])
            budget = int(caps[s, j]) - used
            if b == 0 or budget <= 0:
                continue
            cum = needed_cum[s, link, :b]
            att = min(int(cum[-1]), budget)
            attempts[s, j] = att
            # Packet t is delivered iff its cumulative need fits the grant.
            delivered[s, j] = int(np.searchsorted(cum, att, side="right"))
            used += att
    return delivered, attempts


class TestSolveOrderedService:
    @pytest.mark.parametrize("dtype", [np.int64, np.float32])
    @pytest.mark.parametrize("trial", range(5))
    def test_matches_sequential_reference(self, trial, dtype):
        """Link-space outputs match the sequential sweep, for both integer
        and float32 draw blocks (the production pipeline keeps the block
        in float32 holding exact integers)."""
        rng = np.random.default_rng(100 + trial)
        S, N, A = 7, 6, 4
        order = np.array([rng.permutation(N) for _ in range(S)])
        backlog = rng.integers(0, A + 1, size=(S, N))
        needed_cum = np.cumsum(
            rng.geometric(0.6, size=(S, N, A)), axis=2, dtype=np.int64
        )
        # Caps must be non-increasing along the service order; negatives
        # model positions whose backoff already overruns the interval.
        caps = np.sort(rng.integers(-3, 15, size=(S, N)), axis=1)[:, ::-1]
        delivered, attempts, attempts_pos = solve_ordered_service(
            order, backlog, needed_cum.astype(dtype), caps
        )
        ref_delivered_pos, ref_attempts_pos = naive_ordered_service(
            order, backlog, needed_cum, caps
        )
        rows = np.arange(S)[:, None]
        ref_delivered = np.zeros((S, N), dtype=np.int64)
        ref_attempts = np.zeros((S, N), dtype=np.int64)
        ref_delivered[rows, order] = ref_delivered_pos
        ref_attempts[rows, order] = ref_attempts_pos
        np.testing.assert_array_equal(delivered, ref_delivered)
        np.testing.assert_array_equal(attempts, ref_attempts)
        np.testing.assert_array_equal(attempts_pos, ref_attempts_pos)
        assert attempts.dtype == attempts_pos.dtype == np.int64

    def test_empty_backlog_serves_nothing(self):
        order = np.array([[0, 1, 2]])
        backlog = np.zeros((1, 3), dtype=np.int64)
        needed_cum = np.ones((1, 3, 2), dtype=np.int64)
        caps = np.full((1, 3), 10, dtype=np.int64)
        delivered, attempts, _ = solve_ordered_service(
            order, backlog, needed_cum, caps
        )
        assert delivered.sum() == 0 and attempts.sum() == 0

    def test_truncation_starves_later_positions(self):
        """Once the cap truncates a link, everyone behind it gets nothing."""
        order = np.array([[0, 1, 2]])
        backlog = np.array([[2, 2, 2]])
        needed_cum = np.tile(
            np.array([[3, 6]], dtype=np.int64), (1, 3, 1)
        )  # each link needs 6 attempts to drain
        caps = np.array([[8, 8, 8]], dtype=np.int64)
        delivered, attempts, attempts_pos = solve_ordered_service(
            order, backlog, needed_cum, caps
        )
        # Position 0 drains (6 attempts, 2 packets); position 1 gets the
        # remaining 2 attempts (< 3 needed -> 0 delivered); position 2: 0.
        np.testing.assert_array_equal(attempts_pos, [[6, 2, 0]])
        np.testing.assert_array_equal(delivered, [[2, 0, 0]])
        np.testing.assert_array_equal(attempts, [[6, 2, 0]])


class TestChunkedDraws:
    def test_uniforms_match_unchunked_stream(self):
        """Chunking only amortizes Generator calls; the draw sequence per
        interval is the same slicing of the same stream."""
        draws = _ChunkedUniforms(3, 2)
        chunked = [draws.next(np.random.default_rng(9)) for _ in range(2)]
        # A fresh generator's first block, sliced the same way:
        block = np.random.default_rng(9).random((DRAW_CHUNK, 3, 2))
        np.testing.assert_array_equal(chunked[0], block[0])
        np.testing.assert_array_equal(chunked[1], block[1])


class TestChunkedChannelDraws:
    """Chunk-boundary behavior of the channel retry-draw cache.

    The class refills ``depth`` intervals of draws per Generator call;
    these tests pin down that a sequence of intervals spanning one or
    more refills is identical to an unchunked draw of the same stream,
    for both the in-place fast path and the legacy (``fast=False``)
    cumsum path, including the ``a_max`` clamp edge at p = 1.
    """

    S, N, A = 3, 4, 5

    def _unchunked_reference(self, probs, intervals, seed):
        """All ``intervals`` cumulative blocks from one generator call."""
        scale = (-1.0 / np.log1p(-np.asarray(probs, dtype=float)))[
            None, None, :, None
        ]
        raw = np.random.default_rng(seed).standard_exponential(
            (intervals, self.S, self.N, self.A), dtype=np.float32
        )
        draws = np.maximum(np.ceil(raw * scale.astype(np.float32)), 1.0)
        return np.cumsum(draws, axis=3)

    @pytest.mark.parametrize("fast", [True, False])
    def test_draws_spanning_refill_match_unchunked(self, fast):
        """10 intervals at depth 4 cross two refill boundaries; every
        block equals the unchunked single-call reference because chunks
        are consecutive slices of one generator stream."""
        probs = np.array([0.6, 0.75, 0.9, 0.8])
        draws = _ChunkedChannelDraws(
            probs, self.S, self.A, depth=4, fast=fast
        )
        rng = np.random.default_rng(77)
        got = [draws.next(rng).copy() for _ in range(10)]
        # Three refills of depth 4 consume the same stream values as one
        # call of depth 12 (Generator.standard_exponential fills are
        # sequential), so compare against a 12-deep unchunked draw.
        ref = self._unchunked_reference(probs, 12, seed=77)
        for k in range(10):
            np.testing.assert_array_equal(got[k], ref[k])

    def test_fast_path_matches_legacy_cumsum_path(self):
        probs = np.array([0.5, 0.7, 0.95, 0.85])
        a = _ChunkedChannelDraws(probs, self.S, self.A, depth=3, fast=True)
        b = _ChunkedChannelDraws(probs, self.S, self.A, depth=3, fast=False)
        ra, rb = np.random.default_rng(5), np.random.default_rng(5)
        for _ in range(7):
            np.testing.assert_array_equal(a.next(ra), b.next(rb))

    def test_totals_gather_matches_drain_totals_across_refills(self):
        probs = np.array([0.6, 0.8, 0.9, 0.7])
        fast = _ChunkedChannelDraws(probs, self.S, self.A, depth=2, fast=True)
        rng = np.random.default_rng(3)
        back_rng = np.random.default_rng(30)
        for _ in range(5):
            block = fast.next(rng)
            backlog = back_rng.integers(0, self.A + 1, (self.S, self.N))
            got = fast.totals(block, backlog)
            np.testing.assert_array_equal(got, drain_totals(block, backlog))
            # The gather writes a reused buffer; copy-compare twice to
            # catch stale-index bugs across consecutive intervals.
            again = fast.totals(block, backlog)
            np.testing.assert_array_equal(again, drain_totals(block, backlog))

    @pytest.mark.parametrize("fast", [True, False])
    def test_p_one_clamps_every_draw_to_one(self, fast):
        """p = 1 makes the exponential scale 0, so after the >= 1 clamp a
        cumulative block is exactly 1..a_max — including the last slot of
        the last interval in a chunk (the a_max clamp edge)."""
        probs = np.ones(self.N)
        draws = _ChunkedChannelDraws(
            probs, self.S, self.A, depth=2, fast=fast
        )
        rng = np.random.default_rng(11)
        expected = np.broadcast_to(
            np.arange(1, self.A + 1, dtype=np.float32),
            (self.S, self.N, self.A),
        )
        for _ in range(4):  # spans a refill at depth 2
            block = draws.next(rng)
            np.testing.assert_array_equal(block, expected)

    def test_dtype_falls_back_to_float64_for_huge_scales(self):
        """Near-zero success probabilities make worst-case cumulative
        attempt counts overflow float32's exact-integer range; the cache
        must detect that at construction and draw float64."""
        assert (
            _ChunkedChannelDraws(np.full(2, 0.9), 2, 4).dtype == np.float32
        )
        tiny = np.full(2, 1e-9)
        assert _ChunkedChannelDraws(tiny, 2, 4).dtype == np.float64


class TestKernelDispatch:
    def test_known_policies_have_kernels(self):
        assert has_batch_kernel(DBDPPolicy())
        assert has_batch_kernel(LDFPolicy())
        assert has_batch_kernel(RoundRobinPolicy())
        assert not has_batch_kernel(FCSMAPolicy())

    def test_unsupported_policy_raises(self):
        with pytest.raises(TypeError, match="no batch kernel"):
            make_batch_kernel(FCSMAPolicy())

    def test_stochastic_state_rejected_under_lockstep(self):
        """GE under the lockstep disciplines raises a TypeError naming the
        channel, the discipline, and both working fallbacks."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(3, 0.5),
            channel=GilbertElliottChannel(3),
            timing=idealized_timing(6),
            delivery_ratios=0.8,
        )
        kernel = make_batch_kernel(LDFPolicy())
        with pytest.raises(
            TypeError,
            match=(
                r"GilbertElliottChannel state cannot evolve under the "
                r"lockstep 'batch' draw discipline of the batch engine; "
                r"pass rng='free' \(statistically equivalent\) or use "
                r"engine='scalar'"
            ),
        ):
            kernel.bind(spec, 4, False)
        # The named fallbacks really do bind.
        kernel.bind(spec, 4, False, rng="free")
        make_batch_kernel(LDFPolicy()).bind(spec, 4, True)

    def test_degenerate_state_rejected_with_fallback(self):
        """A GE link whose BAD state never succeeds cannot be pre-drawn
        geometrically; the rejection names the scalar fallback."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(2, 0.5),
            channel=GilbertElliottChannel(2, p_bad=0.0),
            timing=idealized_timing(6),
            delivery_ratios=0.4,
        )
        kernel = make_batch_kernel(LDFPolicy())
        with pytest.raises(TypeError, match="engine='scalar'"):
            kernel.bind(spec, 4, False, rng="free")


class TestDPSequentialFallbackEquivalence:
    def test_forced_sequential_is_bit_identical(self):
        """Route *every* replication through the exact sequential sweep and
        compare with the vectorized closed form on identical draws.  This
        proves the assume-fit/verify shortcut exact, including the
        empty-packet coupling it approximates."""
        spec = video_symmetric_spec(0.6, num_links=6)
        seeds = (0, 1, 2, 3)
        fast = BatchIntervalSimulator(spec, DBDPPolicy(), seeds)
        slow = BatchIntervalSimulator(spec, DBDPPolicy(), seeds)
        assert isinstance(slow.kernel, BatchDPKernel)
        slow.kernel._force_sequential = True
        a = fast.run(300)
        b = slow.run(300)
        np.testing.assert_array_equal(a.deliveries, b.deliveries)
        np.testing.assert_array_equal(a.attempts, b.attempts)
        np.testing.assert_array_equal(a.busy_time_us, b.busy_time_us)
        np.testing.assert_array_equal(a.overhead_time_us, b.overhead_time_us)
        np.testing.assert_array_equal(fast.debts, slow.debts)
