"""Tests for the batch (all-seeds-at-once) simulation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BatchIntervalSimulator,
    BernoulliChannel,
    DBDPPolicy,
    FCSMAPolicy,
    GilbertElliottChannel,
    LDFPolicy,
    NetworkSpec,
    RoundRobinPolicy,
    idealized_timing,
    run_simulation_batch,
    supports_batch_engine,
)
from repro.experiments.configs import video_symmetric_spec
from repro.sim.batch_kernels import BatchIntervalOutcome
from repro.traffic.arrivals import BernoulliArrivals, MarkovModulatedArrivals

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def spec():
    return video_symmetric_spec(0.6, num_links=5)


class TestConstruction:
    def test_unsupported_policy_rejected(self, spec):
        with pytest.raises(TypeError, match="no batch kernel"):
            BatchIntervalSimulator(spec, FCSMAPolicy(), SEEDS)

    def test_stochastic_channel_state_needs_free_rng(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(3, 0.5),
            channel=GilbertElliottChannel(3),
            timing=idealized_timing(6),
            delivery_ratios=0.8,
        )
        with pytest.raises(TypeError, match="rng='free'"):
            BatchIntervalSimulator(spec, LDFPolicy(), SEEDS)
        # The named fallbacks construct fine.
        BatchIntervalSimulator(spec, LDFPolicy(), SEEDS, rng="free")
        BatchIntervalSimulator(spec, LDFPolicy(), SEEDS, sync_rng=True)

    def test_stateful_arrivals_need_sync_mode(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=MarkovModulatedArrivals(3, 0.5),
            channel=BernoulliChannel.symmetric(3, 0.8),
            timing=idealized_timing(6),
            delivery_ratios=0.8,
        )
        with pytest.raises(TypeError, match="sync_rng"):
            BatchIntervalSimulator(spec, LDFPolicy(), SEEDS)
        # The sync path drives scalar clones, so stateful arrivals are fine.
        sim = BatchIntervalSimulator(spec, LDFPolicy(), SEEDS, sync_rng=True)
        sim.run(10)
        assert sim.result.num_intervals == 10
        # Free-draw mode hosts the vectorized batch-state plane.
        free = BatchIntervalSimulator(spec, LDFPolicy(), SEEDS, rng="free")
        free.run(10)
        assert free.result.num_intervals == 10

    def test_stateful_arrival_runs_are_independent(self):
        """Two back-to-back runs sharing a process instance must agree:
        the simulator resets arrival state per run (state-leak guard)."""
        process = MarkovModulatedArrivals(3, 0.6, 0.1, 0.8, 0.9)
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=process,
            channel=BernoulliChannel.symmetric(3, 0.8),
            timing=idealized_timing(6),
            delivery_ratios=0.8,
        )
        first = BatchIntervalSimulator(spec, LDFPolicy(), SEEDS, rng="free")
        first.run(30)
        second = BatchIntervalSimulator(spec, LDFPolicy(), SEEDS, rng="free")
        second.run(30)
        np.testing.assert_array_equal(
            first.result.deliveries, second.result.deliveries
        )

    def test_supports_batch_engine(self, spec):
        assert supports_batch_engine(spec, DBDPPolicy())
        assert supports_batch_engine(spec, LDFPolicy())
        assert not supports_batch_engine(spec, FCSMAPolicy())
        stateful = NetworkSpec.from_delivery_ratios(
            arrivals=MarkovModulatedArrivals(3, 0.5),
            channel=BernoulliChannel.symmetric(3, 0.8),
            timing=idealized_timing(6),
            delivery_ratios=0.8,
        )
        assert not supports_batch_engine(stateful, LDFPolicy())
        assert supports_batch_engine(stateful, LDFPolicy(), sync_rng=True)
        # Free-draw mode hosts stochastic arrival state vectorized.
        assert supports_batch_engine(stateful, LDFPolicy(), rng="free")
        from repro.traffic.arrivals import ParetoBurstArrivals

        pareto = NetworkSpec.from_delivery_ratios(
            arrivals=ParetoBurstArrivals(3, start_prob=0.3),
            channel=BernoulliChannel.symmetric(3, 0.8),
            timing=idealized_timing(6),
            delivery_ratios=0.8,
        )
        assert not supports_batch_engine(pareto, LDFPolicy())
        assert supports_batch_engine(pareto, LDFPolicy(), rng="free")
        assert supports_batch_engine(pareto, LDFPolicy(), sync_rng=True)

    def test_negative_interval_count_rejected(self, spec):
        sim = BatchIntervalSimulator(spec, LDFPolicy(), SEEDS)
        with pytest.raises(ValueError):
            sim.run(-1)


class TestReproducibility:
    @pytest.mark.parametrize("factory", [DBDPPolicy, LDFPolicy, RoundRobinPolicy])
    def test_same_seeds_same_trace(self, spec, factory):
        a = run_simulation_batch(spec, factory(), 120, SEEDS)
        b = run_simulation_batch(spec, factory(), 120, SEEDS)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        np.testing.assert_array_equal(a.deliveries, b.deliveries)
        np.testing.assert_array_equal(a.attempts, b.attempts)

    def test_replications_are_distinct(self, spec):
        result = run_simulation_batch(spec, DBDPPolicy(), 200, SEEDS)
        assert not np.array_equal(
            result.deliveries[:, 0], result.deliveries[:, 1]
        )

    def test_split_runs_match_single_run(self, spec):
        """run(70) + run(50) must equal run(120): the chunked draw caches
        are internal bookkeeping, not part of the random semantics."""
        split = BatchIntervalSimulator(spec, DBDPPolicy(), SEEDS)
        split.run(70)
        split.run(50)
        whole = run_simulation_batch(spec, DBDPPolicy(), 120, SEEDS)
        np.testing.assert_array_equal(
            split.result.deliveries, whole.deliveries
        )
        np.testing.assert_array_equal(split.result.arrivals, whole.arrivals)

    def test_progress_callback(self, spec):
        seen = []
        sim = BatchIntervalSimulator(spec, LDFPolicy(), SEEDS)
        sim.run(7, progress=seen.append)
        assert seen == list(range(7))


class TestDebtAccounting:
    def test_debts_track_requirement_minus_deliveries(self, spec):
        sim = BatchIntervalSimulator(spec, DBDPPolicy(), SEEDS)
        sim.run(100)
        expected = (
            100 * spec.requirement_vector[None, :]
            - sim.result.deliveries.sum(axis=0)
        )
        np.testing.assert_allclose(sim.debts, expected)


class TestValidation:
    def _cheat(self, sim):
        def run_interval(k, arrivals, debts, rng, sync):
            S, N = arrivals.shape
            return BatchIntervalOutcome(
                deliveries=arrivals + 1,
                attempts=arrivals + 1,
                busy_time_us=np.zeros(S),
                overhead_time_us=np.zeros(S),
                collisions=np.zeros(S, dtype=np.int64),
            )

        sim.kernel.run_interval = run_interval

    def test_overdelivery_caught(self, spec):
        sim = BatchIntervalSimulator(spec, LDFPolicy(), SEEDS)
        self._cheat(sim)
        with pytest.raises(AssertionError, match="delivered more"):
            sim.step()

    def test_validate_false_skips_guard(self, spec):
        sim = BatchIntervalSimulator(spec, LDFPolicy(), SEEDS, validate=False)
        self._cheat(sim)
        sim.step()  # must not raise
        assert sim.interval == 1


class TestResultViews:
    @pytest.fixture(scope="class")
    def result(self):
        spec = video_symmetric_spec(0.6, num_links=5)
        return run_simulation_batch(
            spec, DBDPPolicy(), 80, SEEDS, record_priorities=True
        )

    def test_shapes(self, result):
        K, S, N = 80, len(SEEDS), 5
        assert result.deliveries.shape == (K, S, N)
        assert result.arrivals.shape == (K, S, N)
        assert result.busy_time_us.shape == (K, S)
        assert result.collisions.shape == (K, S)
        assert result.total_deficiency().shape == (S,)
        assert result.per_link_deficiency().shape == (S, N)
        assert result.timely_throughput().shape == (S, N)

    def test_priorities_are_permutations(self, result):
        priorities = result.priorities
        expected = np.arange(1, 6)
        for k in (0, 40, 79):
            for s in range(len(SEEDS)):
                assert sorted(priorities[k, s]) == list(expected)

    def test_trajectory_ends_at_final_deficiency(self, result):
        trajectory = result.deficiency_trajectory()
        assert trajectory.shape == (80, len(SEEDS))
        np.testing.assert_allclose(trajectory[-1], result.total_deficiency())

    def test_seed_result_slices_match(self, result):
        for s, seed in enumerate(SEEDS):
            scalar = result.seed_result(seed)
            np.testing.assert_array_equal(
                scalar.deliveries, result.deliveries[:, s]
            )
            np.testing.assert_array_equal(
                scalar.attempts, result.attempts[:, s]
            )
            assert scalar.total_deficiency() == pytest.approx(
                result.total_deficiency()[s]
            )
            np.testing.assert_allclose(
                scalar.timely_throughput(), result.timely_throughput()[s]
            )

    def test_to_results_ordering(self, result):
        scalars = result.to_results()
        assert len(scalars) == len(SEEDS)
        assert all(r.policy_name == result.policy_name for r in scalars)

    def test_unknown_seed_raises(self, result):
        with pytest.raises(KeyError):
            result.seed_index(999)
