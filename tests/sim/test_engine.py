"""Tests for the discrete-event core."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventScheduler


class TestScheduling:
    def test_time_ordering(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule_at(5.0, lambda: log.append("b"))
        scheduler.schedule_at(1.0, lambda: log.append("a"))
        scheduler.schedule_at(9.0, lambda: log.append("c"))
        scheduler.run_all()
        assert log == ["a", "b", "c"]
        assert scheduler.now == 9.0

    def test_fifo_for_simultaneous_events(self):
        scheduler = EventScheduler()
        log = []
        for name in "abc":
            scheduler.schedule_at(2.0, lambda n=name: log.append(n))
        scheduler.run_all()
        assert log == ["a", "b", "c"]

    def test_schedule_in(self):
        scheduler = EventScheduler(start_time=10.0)
        times = []
        scheduler.schedule_in(5.0, lambda: times.append(scheduler.now))
        scheduler.run_all()
        assert times == [15.0]

    def test_past_scheduling_rejected(self):
        scheduler = EventScheduler(start_time=10.0)
        with pytest.raises(ValueError):
            scheduler.schedule_at(9.0, lambda: None)
        with pytest.raises(ValueError):
            scheduler.schedule_in(-1.0, lambda: None)

    def test_cancellation(self):
        scheduler = EventScheduler()
        log = []
        handle = scheduler.schedule_at(1.0, lambda: log.append("x"))
        handle.cancel()
        scheduler.run_all()
        assert log == []

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        log = []

        def first():
            log.append(scheduler.now)
            scheduler.schedule_in(2.0, lambda: log.append(scheduler.now))

        scheduler.schedule_at(1.0, first)
        scheduler.run_all()
        assert log == [1.0, 3.0]


class TestRunUntil:
    def test_stops_at_deadline(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule_at(1.0, lambda: log.append(1))
        scheduler.schedule_at(5.0, lambda: log.append(5))
        scheduler.run_until(3.0)
        assert log == [1]
        assert scheduler.now == 3.0
        scheduler.run_until(10.0)
        assert log == [1, 5]

    def test_inclusive_boundary(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule_at(3.0, lambda: log.append(3))
        scheduler.run_until(3.0)
        assert log == [3]

    def test_event_budget(self):
        scheduler = EventScheduler()

        def rescheduling():
            scheduler.schedule_in(0.1, rescheduling)

        scheduler.schedule_at(0.0, rescheduling)
        with pytest.raises(RuntimeError, match="budget"):
            scheduler.run_until(1e9, max_events=100)

    def test_run_all_budget(self):
        scheduler = EventScheduler()

        def rescheduling():
            scheduler.schedule_in(0.1, rescheduling)

        scheduler.schedule_at(0.0, rescheduling)
        with pytest.raises(RuntimeError):
            scheduler.run_all(max_events=50)

    def test_counters(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        assert scheduler.pending == 2
        scheduler.run_all()
        assert scheduler.events_processed == 2
        assert scheduler.pending == 0
