"""Tests for the microsecond event-driven simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    ConstantArrivals,
    ConstantSwapBias,
    NetworkSpec,
    idealized_timing,
    low_latency_timing,
    video_timing,
)
from repro.core.permutations import is_priority_vector
from repro.sim.engine import EventScheduler
from repro.sim.event_sim import EventDrivenDPSimulator, WirelessChannel
from repro.traffic.arrivals import BurstyVideoArrivals


def make_spec(n=5, rate=0.7, p=0.8):
    return NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(n, rate),
        channel=BernoulliChannel.symmetric(n, p),
        timing=low_latency_timing(),
        delivery_ratios=0.9,
    )


class TestWirelessChannel:
    def test_busy_tracking(self):
        scheduler = EventScheduler()
        channel = WirelessChannel(scheduler)
        assert not channel.busy
        end = channel.begin_transmission(0, 100.0)
        assert channel.busy and channel.transmitter == 0
        assert end == 100.0
        scheduler.schedule_at(100.0, lambda: None)
        scheduler.run_all()
        assert not channel.busy
        assert channel.transmitter is None

    def test_overlap_raises(self):
        scheduler = EventScheduler()
        channel = WirelessChannel(scheduler)
        channel.begin_transmission(0, 100.0)
        with pytest.raises(RuntimeError, match="collision"):
            channel.begin_transmission(1, 50.0)

    def test_busy_accounting(self):
        scheduler = EventScheduler()
        channel = WirelessChannel(scheduler)
        channel.begin_transmission(0, 100.0)
        scheduler.schedule_at(200.0, lambda: None)
        scheduler.run_all()
        channel.begin_transmission(1, 40.0)
        assert channel.total_busy_us == 140.0


class TestEventSimBasics:
    def test_rejects_idealized_timing(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(2, 1),
            channel=BernoulliChannel.symmetric(2, 1.0),
            timing=idealized_timing(4),
            delivery_ratios=1.0,
        )
        with pytest.raises(ValueError, match="backoff slot"):
            EventDrivenDPSimulator(spec)

    def test_deliveries_bounded_by_arrivals(self):
        sim = EventDrivenDPSimulator(make_spec(), seed=0)
        result = sim.run(300)
        assert np.all(result.deliveries <= result.arrivals)

    def test_priorities_remain_permutation(self):
        sim = EventDrivenDPSimulator(
            make_spec(), bias=ConstantSwapBias(0.5), seed=1
        )
        for _ in range(300):
            sim.run(1)
            assert is_priority_vector(sim.priorities)

    def test_reproducible(self):
        a = EventDrivenDPSimulator(make_spec(), seed=9).run(100)
        b = EventDrivenDPSimulator(make_spec(), seed=9).run(100)
        np.testing.assert_array_equal(a.deliveries, b.deliveries)

    def test_perfect_light_load_serves_all(self):
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=ConstantArrivals.symmetric(3, 1),
            channel=BernoulliChannel.symmetric(3, 1.0),
            timing=low_latency_timing(),
            delivery_ratios=1.0,
        )
        result = EventDrivenDPSimulator(spec, seed=2).run(100)
        np.testing.assert_array_equal(result.deliveries, np.ones((100, 3)))

    def test_initial_priorities(self):
        sim = EventDrivenDPSimulator(
            make_spec(n=4), seed=0, initial_priorities=(4, 3, 2, 1)
        )
        assert sim.priorities == (4, 3, 2, 1)
        with pytest.raises(ValueError):
            EventDrivenDPSimulator(
                make_spec(n=4), seed=0, initial_priorities=(1, 2, 3)
            )

    def test_busy_time_bounded_by_interval(self):
        sim = EventDrivenDPSimulator(make_spec(rate=0.95), seed=3)
        result = sim.run(200)
        assert np.all(result.busy_time_us <= sim.spec.timing.interval_us + 1e-9)


class TestSwapDynamicsInEventTime:
    def test_swaps_occur(self):
        spec = make_spec(n=4, rate=0.5)
        sim = EventDrivenDPSimulator(spec, bias=ConstantSwapBias(0.5), seed=4)
        initial = sim.priorities
        sim.run(200)
        assert sim.priorities != initial  # with mu = 0.5 swaps are frequent

    def test_single_swap_per_interval(self):
        spec = make_spec(n=5, rate=0.5)
        sim = EventDrivenDPSimulator(spec, bias=ConstantSwapBias(0.5), seed=5)
        previous = sim.priorities
        for _ in range(200):
            sim.run(1)
            current = sim.priorities
            moved = [i for i in range(5) if previous[i] != current[i]]
            assert len(moved) in (0, 2)
            previous = current

    def test_empty_packets_claim_priority(self):
        """Candidates with no arrivals still complete the handshake: with
        zero arrival probability except one link, swaps still happen."""
        n = 3
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals(rates=(0.9, 0.05, 0.05)),
            channel=BernoulliChannel.symmetric(n, 0.9),
            timing=low_latency_timing(),
            delivery_ratios=0.5,
        )
        sim = EventDrivenDPSimulator(spec, bias=ConstantSwapBias(0.5), seed=6)
        seen = set()
        for _ in range(300):
            sim.run(1)
            seen.add(sim.priorities)
        assert len(seen) > 1  # the chain moves despite silent links


class TestCrossEngineAgreement:
    def test_video_scenario_statistics(self):
        """Interval engine and event engine agree on delivery statistics."""
        from repro import DBDPPolicy, run_simulation

        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BurstyVideoArrivals.symmetric(8, 0.5),
            channel=BernoulliChannel.symmetric(8, 0.7),
            timing=video_timing(),
            delivery_ratios=0.9,
        )
        event = EventDrivenDPSimulator(spec, seed=11).run(600)
        interval = run_simulation(spec, DBDPPolicy(), 600, seed=11)
        event_mean = event.deliveries.sum(axis=1).mean()
        interval_mean = interval.deliveries.sum(axis=1).mean()
        assert event_mean == pytest.approx(interval_mean, rel=0.03)


class TestMultiPairEventSim:
    def test_multi_pair_keeps_invariants(self):
        """Remark 6 in event time: multiple disjoint handshakes per
        interval, permutation preserved, no channel collisions, no
        handshake desynchronization (the simulator raises on either)."""
        from repro import ConstantSwapBias

        sim = EventDrivenDPSimulator(
            make_spec(n=8, rate=0.5), bias=ConstantSwapBias(0.5),
            num_pairs=3, seed=13,
        )
        previous = sim.priorities
        for _ in range(300):
            sim.run(1)
            current = sim.priorities
            assert is_priority_vector(current)
            moved = [i for i in range(8) if previous[i] != current[i]]
            assert len(moved) <= 6  # at most 3 disjoint swaps
            previous = current

    def test_multi_pair_swaps_more_often_than_single(self):
        from repro import ConstantSwapBias

        def committed(num_pairs):
            sim = EventDrivenDPSimulator(
                make_spec(n=8, rate=0.4), bias=ConstantSwapBias(0.5),
                num_pairs=num_pairs, seed=14, record_priorities=True,
            )
            sim.run(600)
            trace = sim.result.priorities
            return sum(
                sum(1 for i in range(8) if a[i] != b[i]) // 2
                for a, b in zip(trace, trace[1:])
            )

        assert committed(3) > 1.5 * committed(1)
