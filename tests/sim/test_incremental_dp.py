"""Bit-identity and knob tests for ``dp_state="incremental"``.

The incremental sparse priority-state engine keeps the DP kernel's
inverse permutation and serve-order tables alive in the workspace across
intervals, applies accepted adjacent swaps in O(commits), and solves the
interval timeline on the at-most ``max_transmissions + 1`` backlogged
serve-set links instead of all N.  The contract is *bit-identity* with
the dense recompute under the same RNG bundle: every derived quantity is
a small exact integer carried in float, so the two state-maintenance
strategies must agree on every interval of every replication — asserted
here per interval, across backends, across draw disciplines, and at the
large N the engine exists for.

The knob itself resolves like ``backend``: ``None`` defers to the
``REPRO_DP_STATE`` environment variable and then to the policy family's
``supports_incremental_dp`` registry capability; explicit requests are
strict, environment requests degrade silently (see
:func:`repro.sim.batch_kernels.resolve_dp_state`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBDPPolicy, ELDFPolicy
from repro.core.permutations import (
    apply_adjacent_swap,
    apply_swap_to_order,
    link_order_to_priorities,
    priority_to_link_order,
)
from repro.experiments.configs import video_symmetric_spec
from repro.sim import jit_kernels
from repro.sim.batch_kernels import DP_STATE_MODES, resolve_dp_state
from repro.sim.batch_sim import BatchIntervalSimulator


def _run(
    n,
    dp_state,
    num_intervals,
    *,
    alpha=0.55,
    backend="numpy",
    rng=None,
    seeds=(0, 1, 2),
    force_sequential=False,
):
    sim = BatchIntervalSimulator(
        video_symmetric_spec(alpha, num_links=n),
        DBDPPolicy(),
        seeds=seeds,
        record_traces=True,
        record_priorities=True,
        validate=False,
        backend=backend,
        rng=rng,
        dp_state=dp_state,
    )
    if force_sequential:
        sim.kernel._force_sequential = True
    return sim, sim.run(num_intervals)


def _assert_runs_identical(a, b, context=""):
    """Per-interval, per-replication, per-link equality of every trace."""
    assert np.array_equal(a.deliveries, b.deliveries), context
    assert np.array_equal(a.attempts, b.attempts), context
    assert np.array_equal(a.priorities, b.priorities), context
    assert np.array_equal(a.overhead_time_us, b.overhead_time_us), context
    assert np.array_equal(a.busy_time_us, b.busy_time_us), context
    assert np.array_equal(a.collisions, b.collisions), context


class TestDenseIncrementalBitIdentity:
    """dense and incremental must agree on every interval at every N."""

    @pytest.mark.parametrize(
        "n,num_intervals",
        [(2, 300), (3, 300), (20, 200), (200, 60)],
    )
    def test_every_interval_identical(self, n, num_intervals):
        _, dense = _run(n, "dense", num_intervals)
        sim, inc = _run(n, "incremental", num_intervals)
        assert sim.dp_state == "incremental"
        _assert_runs_identical(dense, inc, f"N={n}")

    def test_congested_stack_identical(self):
        # High alpha keeps everyone backlogged, so commits, misfitting
        # empty claims, and resolver activations all fire constantly.
        _, dense = _run(20, "dense", 250, alpha=0.95)
        _, inc = _run(20, "incremental", 250, alpha=0.95)
        _assert_runs_identical(dense, inc, "congested")

    def test_forced_sequential_rows_match_vectorized(self):
        # The per-row Python resolver is the vectorized block solve's
        # fallback; forcing it on every row must change nothing.
        _, vec = _run(20, "incremental", 150)
        _, seq = _run(20, "incremental", 150, force_sequential=True)
        _assert_runs_identical(vec, seq, "force_sequential")

    def test_free_rng_discipline_identical_across_dp_state(self):
        # free mode draws different values than batch mode, but dense
        # and incremental under the *same* discipline must still agree.
        _, dense = _run(20, "dense", 200, rng="free")
        _, inc = _run(20, "incremental", 200, rng="free")
        _assert_runs_identical(dense, inc, "rng=free")


class TestCrossBackendIdentity:
    """legacy, numpy-dense, numpy-incremental and the forced-Python jit
    leg all consume the same draws and must agree bit for bit."""

    def test_n200_all_backends(self, monkeypatch):
        _, legacy = _run(200, None, 40, backend="legacy")
        _, dense = _run(200, "dense", 40, backend="numpy")
        _, inc = _run(200, "incremental", 40, backend="numpy")
        _assert_runs_identical(legacy, dense, "legacy vs numpy-dense")
        _assert_runs_identical(dense, inc, "numpy dense vs incremental")
        # Forced-Python jit: exercises the compiled kernels' exact loop
        # bodies without numba (the numba leg itself runs in CI).
        monkeypatch.setattr(jit_kernels, "force_python", True)
        _, jitpy = _run(200, "incremental", 40, backend="jit")
        _assert_runs_identical(inc, jitpy, "numpy vs jit-python incremental")

    def test_n2000_dense_vs_incremental(self):
        # The scale the engine exists for; few intervals keep it cheap.
        _, dense = _run(2000, "dense", 6, seeds=(0, 1))
        _, inc = _run(2000, "incremental", 6, seeds=(0, 1))
        _assert_runs_identical(dense, inc, "N=2000")


class TestDpStateResolution:
    """The knob resolves like ``backend``: capability default, strict
    explicit requests, soft environment requests."""

    def test_modes_tuple(self):
        assert DP_STATE_MODES == ("dense", "incremental")

    def test_default_is_incremental_for_capable_workspace(self, monkeypatch):
        monkeypatch.delenv("REPRO_DP_STATE", raising=False)
        assert (
            resolve_dp_state(None, supports_incremental=True, workspace=True)
            == "incremental"
        )

    @pytest.mark.parametrize(
        "supports,workspace", [(False, True), (True, False), (False, False)]
    )
    def test_default_is_dense_when_not_capable(
        self, monkeypatch, supports, workspace
    ):
        monkeypatch.delenv("REPRO_DP_STATE", raising=False)
        assert (
            resolve_dp_state(
                None, supports_incremental=supports, workspace=workspace
            )
            == "dense"
        )

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown dp_state"):
            resolve_dp_state("sparse", supports_incremental=True)

    def test_explicit_incremental_without_capability_raises(self):
        with pytest.raises(ValueError, match="supports_incremental_dp"):
            resolve_dp_state("incremental", supports_incremental=False)

    def test_explicit_incremental_on_legacy_raises(self):
        with pytest.raises(ValueError, match="legacy"):
            resolve_dp_state(
                "incremental", supports_incremental=True, workspace=False
            )

    def test_env_request_degrades_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_DP_STATE", "incremental")
        assert (
            resolve_dp_state(None, supports_incremental=False) == "dense"
        )
        assert (
            resolve_dp_state(None, supports_incremental=True, workspace=True)
            == "incremental"
        )

    def test_env_unknown_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DP_STATE", "bogus")
        with pytest.raises(ValueError, match="unknown dp_state"):
            resolve_dp_state(None, supports_incremental=True)

    def test_simulator_reports_resolved_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_DP_STATE", raising=False)
        # Sparse serve set (N > max_transmissions + 1 = 61 on the video
        # timing): the capability default picks the incremental path.
        big = video_symmetric_spec(0.6, num_links=80)
        sim = BatchIntervalSimulator(
            big, DBDPPolicy(), seeds=(0,), validate=False, backend="numpy"
        )
        assert sim.dp_state == "incremental"
        sim = BatchIntervalSimulator(
            big, DBDPPolicy(), seeds=(0,), validate=False, backend="legacy"
        )
        assert sim.dp_state == "dense"

    def test_default_declines_incremental_on_dense_serve_set(
        self, monkeypatch
    ):
        # Paper-scale N (20 links, budget 60): every link fits in the
        # budget, there is no sparsity to exploit, and the silent
        # default keeps the dense path — an explicit request (or the
        # environment) still gets the bit-identical incremental path.
        monkeypatch.delenv("REPRO_DP_STATE", raising=False)
        spec = video_symmetric_spec(0.6, num_links=20)
        auto = BatchIntervalSimulator(
            spec, DBDPPolicy(), seeds=(0,), validate=False, backend="numpy"
        )
        assert auto.dp_state == "dense"
        explicit = BatchIntervalSimulator(
            spec,
            DBDPPolicy(),
            seeds=(0,),
            validate=False,
            backend="numpy",
            dp_state="incremental",
        )
        assert explicit.dp_state == "incremental"
        monkeypatch.setenv("REPRO_DP_STATE", "incremental")
        env = BatchIntervalSimulator(
            spec, DBDPPolicy(), seeds=(0,), validate=False, backend="numpy"
        )
        assert env.dp_state == "incremental"

    def test_non_dp_family_rejects_explicit_incremental(self):
        with pytest.raises(ValueError, match="supports_incremental_dp"):
            BatchIntervalSimulator(
                video_symmetric_spec(0.6, num_links=6),
                ELDFPolicy(),
                seeds=(0,),
                validate=False,
                backend="numpy",
                dp_state="incremental",
            )

    def test_multipair_degrades_with_warning_and_stays_identical(self):
        # Remark-6 multi-pair stacks keep the dense recompute; an
        # explicit request degrades loudly, then runs bit-identically.
        spec = video_symmetric_spec(0.6, num_links=8)
        with pytest.warns(RuntimeWarning, match="single-pair"):
            sim = BatchIntervalSimulator(
                spec,
                DBDPPolicy(num_pairs=2),
                seeds=(0, 1),
                record_priorities=True,
                validate=False,
                backend="numpy",
                dp_state="incremental",
            )
        assert sim.dp_state == "dense"
        inc_req = sim.run(120)
        dense = BatchIntervalSimulator(
            spec,
            DBDPPolicy(num_pairs=2),
            seeds=(0, 1),
            record_priorities=True,
            validate=False,
            backend="numpy",
            dp_state="dense",
        ).run(120)
        _assert_runs_identical(dense, inc_req, "multi-pair degrade")


class TestOrderMaintenancePrimitive:
    """``apply_swap_to_order`` is the O(1) scalar counterpart of the
    kernel's swap application; it must commute with the sigma-space
    swap through the order/priority bijection."""

    @pytest.mark.parametrize("n", [2, 3, 5, 9])
    def test_order_swap_matches_sigma_swap(self, n):
        rng = np.random.default_rng(41)
        for _ in range(30):
            sigma = tuple(int(v) for v in rng.permutation(n) + 1)
            c = int(rng.integers(1, n))
            expected = priority_to_link_order(apply_adjacent_swap(sigma, c))
            order = list(priority_to_link_order(sigma))
            down, up = apply_swap_to_order(order, c)
            assert tuple(order) == expected
            # The returned pair is the pre-swap occupants of (c, c+1).
            assert sigma[down] == c and sigma[up] == c + 1
            # Round-trip: the mutated order maps back to the swapped sigma.
            assert link_order_to_priorities(order) == apply_adjacent_swap(
                sigma, c
            )

    def test_out_of_range_candidate_raises(self):
        with pytest.raises(ValueError):
            apply_swap_to_order([0, 1, 2], 0)
        with pytest.raises(ValueError):
            apply_swap_to_order([0, 1, 2], 3)


class TestSweepLevelDpState:
    """A sweep-level ``dp_state`` request addresses the DP-family cells
    only; families without ``supports_incremental_dp`` (ELDF/LDF) must
    run exactly as they would with ``dp_state=None`` — neither raising
    the kernel's strict ``ValueError`` nor silently demoting their fused
    group to the per-cell fallback (whose different stream tags would
    change the draws)."""

    POLICIES = {"DBDP": DBDPPolicy, "LDF": ELDFPolicy}

    @staticmethod
    def _points(sweep):
        return [
            (p.policy, p.parameter, p.total_deficiency, p.collisions)
            for p in sweep.points
        ]

    def test_fused_sweep_is_invariant_to_dp_state(self):
        from repro.experiments.grid import run_sweep_fused

        kw = dict(num_intervals=40, seeds=(0, 1))
        base = run_sweep_fused(
            "alpha", [0.55, 0.65], video_symmetric_spec, self.POLICIES, **kw
        )
        for mode in ("dense", "incremental"):
            got = run_sweep_fused(
                "alpha", [0.55, 0.65], video_symmetric_spec, self.POLICIES,
                dp_state=mode, **kw
            )
            assert self._points(got) == self._points(base), mode

    def test_batch_sweep_is_invariant_to_dp_state(self):
        from repro.experiments.runner import run_sweep

        kw = dict(seeds=(0, 1), engine="batch")
        base = run_sweep(
            "alpha", [0.55, 0.65], video_symmetric_spec, self.POLICIES, 40,
            **kw
        )
        got = run_sweep(
            "alpha", [0.55, 0.65], video_symmetric_spec, self.POLICIES, 40,
            dp_state="incremental", **kw
        )
        assert self._points(got) == self._points(base)

    def test_run_single_degrades_for_non_dp_family(self):
        from repro.experiments.runner import run_single

        spec = video_symmetric_spec(0.6)
        base = run_single(spec, ELDFPolicy, 40, seeds=(0, 1), engine="batch")
        got = run_single(
            spec, ELDFPolicy, 40, seeds=(0, 1), engine="batch",
            dp_state="incremental",
        )
        assert got.total_deficiency == base.total_deficiency
        assert got.collisions == base.collisions

    @pytest.mark.parametrize("entry", ["run_single", "run_sweep_fused"])
    def test_unknown_dp_state_rejected_before_degrade(self, entry):
        from repro.experiments.grid import run_sweep_fused
        from repro.experiments.runner import run_single

        spec = video_symmetric_spec(0.6)
        with pytest.raises(ValueError, match="dp_state"):
            if entry == "run_single":
                run_single(
                    spec, ELDFPolicy, 20, seeds=(0,), engine="batch",
                    dp_state="bogus",
                )
            else:
                run_sweep_fused(
                    "alpha", [0.6], video_symmetric_spec, self.POLICIES,
                    num_intervals=20, seeds=(0,), dp_state="bogus",
                )
