"""Tests for the interval-level simulator driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DBDPPolicy,
    IntervalMac,
    IntervalOutcome,
    IntervalSimulator,
    LDFPolicy,
    run_simulation,
)


class TestDriver:
    def test_reproducible_runs(self, lossy_spec):
        a = run_simulation(lossy_spec, LDFPolicy(), 200, seed=5)
        b = run_simulation(lossy_spec, LDFPolicy(), 200, seed=5)
        np.testing.assert_array_equal(a.deliveries, b.deliveries)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)

    def test_different_seeds_differ(self, lossy_spec):
        a = run_simulation(lossy_spec, LDFPolicy(), 200, seed=1)
        b = run_simulation(lossy_spec, LDFPolicy(), 200, seed=2)
        assert not np.array_equal(a.deliveries, b.deliveries)

    def test_step_and_bulk_agree(self, lossy_spec):
        sim = IntervalSimulator(lossy_spec, LDFPolicy(), seed=3)
        for _ in range(50):
            sim.step()
        bulk = run_simulation(lossy_spec, LDFPolicy(), 50, seed=3)
        np.testing.assert_array_equal(sim.result.deliveries, bulk.deliveries)

    def test_ledger_consistency(self, lossy_spec):
        """Ledger debts must equal k q - cumulative deliveries."""
        sim = IntervalSimulator(lossy_spec, DBDPPolicy(), seed=4)
        sim.run(100)
        expected = (
            100 * lossy_spec.requirement_vector
            - sim.result.deliveries.sum(axis=0)
        )
        np.testing.assert_allclose(sim.ledger.debts, expected)

    def test_negative_interval_count_rejected(self, lossy_spec):
        sim = IntervalSimulator(lossy_spec, LDFPolicy(), seed=0)
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_progress_callback(self, lossy_spec):
        seen = []
        sim = IntervalSimulator(lossy_spec, LDFPolicy(), seed=0)
        sim.run(10, progress=seen.append)
        assert seen == list(range(10))

    def test_record_priorities(self, lossy_spec):
        sim = IntervalSimulator(
            lossy_spec, DBDPPolicy(), seed=0, record_priorities=True
        )
        sim.run(20)
        priorities = sim.result.priorities
        assert len(priorities) == 20
        assert all(sorted(p) == [1, 2, 3, 4] for p in priorities)

    def test_overdelivery_guard(self, lossy_spec):
        class CheatingPolicy(IntervalMac):
            name = "cheat"

            def run_interval(self, k, arrivals, positive_debts, rng):
                return IntervalOutcome(
                    deliveries=arrivals + 1, attempts=arrivals + 1
                )

        sim = IntervalSimulator(lossy_spec, CheatingPolicy(), seed=0)
        with pytest.raises(AssertionError, match="delivered more than arrived"):
            sim.step()

    def test_validate_false_skips_overdelivery_guard(self, lossy_spec):
        """Benchmarks opt out of the per-step sanity assert; the simulator
        must then accept whatever the policy reports."""

        class CheatingPolicy(IntervalMac):
            name = "cheat"

            def run_interval(self, k, arrivals, positive_debts, rng):
                return IntervalOutcome(
                    deliveries=arrivals + 1, attempts=arrivals + 1
                )

        sim = IntervalSimulator(
            lossy_spec, CheatingPolicy(), seed=0, validate=False
        )
        sim.step()  # must not raise
        assert sim.result.num_intervals == 1

    def test_validate_flag_does_not_change_results(self, lossy_spec):
        checked = run_simulation(lossy_spec, LDFPolicy(), 100, seed=6)
        unchecked = run_simulation(
            lossy_spec, LDFPolicy(), 100, seed=6, validate=False
        )
        np.testing.assert_array_equal(checked.deliveries, unchecked.deliveries)
        np.testing.assert_array_equal(checked.attempts, unchecked.attempts)
