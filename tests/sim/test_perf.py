"""Tests for the per-stage perf-counter layer (:mod:`repro.sim.perf`).

The acceptance constraint is that disabled counters stay out of the hot
path: every instrumented site guards on ``counters.enabled`` before
touching the clock, so a disabled run pays one attribute check per site.
That property is asserted *structurally* here — a counting clock proves
the hot loop never reads the time when disabled — because a wall-clock
"< 2 %" comparison of two runs cannot be measured reliably on a shared
CI core, while zero clock reads bounds the overhead far below it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DBDPPolicy, LDFPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.grid import run_sweep_fused
from repro.sim import perf
from repro.sim.perf import PerfCounters


@pytest.fixture(autouse=True)
def _clean_registry():
    """Leave the process-global registry the way each test found it."""
    was_enabled = perf.counters.enabled
    snapshot_before = dict(perf.counters.stages)
    perf.counters.enabled = False
    perf.counters.reset()
    yield
    perf.counters.enabled = was_enabled
    perf.counters.reset()
    perf.counters.stages.update(snapshot_before)


class TestPerfCountersApi:
    def test_add_accumulates_seconds_calls_allocs(self):
        c = PerfCounters(enabled=True)
        c.add("kernel.x", 0.5)
        c.add("kernel.x", 0.25, allocs=3)
        stat = c.stages["kernel.x"]
        assert stat.seconds == 0.75
        assert stat.calls == 2
        assert stat.allocs == 3

    def test_alloc_records_without_a_call(self):
        c = PerfCounters(enabled=True)
        c.alloc("bind", 7)
        stat = c.stages["bind"]
        assert stat.allocs == 7 and stat.calls == 0 and stat.seconds == 0.0

    def test_snapshot_sorted_by_descending_seconds(self):
        c = PerfCounters(enabled=True)
        c.add("small", 0.1)
        c.add("large", 0.9)
        snap = c.snapshot()
        assert list(snap) == ["large", "small"]
        assert snap["large"] == {"seconds": 0.9, "calls": 1, "allocs": 0}

    def test_seconds_of_unknown_stage_is_zero(self):
        assert PerfCounters().seconds("nope") == 0.0

    def test_reset_clears_stages_not_enabled_flag(self):
        c = PerfCounters(enabled=True)
        c.add("x", 1.0)
        c.reset()
        assert not c.stages and c.enabled

    def test_summary_renders_table(self):
        c = PerfCounters(enabled=True)
        assert c.summary() == "(no perf stages recorded)"
        c.add("stage.a", 0.125, allocs=2)
        text = c.summary()
        assert "stage.a" in text and "0.1250" in text

    def test_stage_context_manager_respects_enabled(self):
        perf.counters.enabled = False
        with perf.stage("cold"):
            pass
        assert "cold" not in perf.counters.stages
        perf.counters.enabled = True
        with perf.stage("cold", allocs=1):
            pass
        stat = perf.counters.stages["cold"]
        assert stat.calls == 1 and stat.allocs == 1


class TestHotPathOverhead:
    """The fused hot loop must never touch the clock while disabled."""

    ALPHAS = (0.5, 0.6)
    SEEDS = (0, 1)

    def _run(self):
        return run_sweep_fused(
            "alpha",
            self.ALPHAS,
            lambda a: video_symmetric_spec(a, delivery_ratio=0.9),
            {"DB-DP": DBDPPolicy, "LDF": LDFPolicy},
            40,
            self.SEEDS,
            validate=False,
            backend="numpy",
        )

    def test_disabled_counters_never_read_the_clock(self, monkeypatch):
        calls = []
        real_clock = perf.clock
        monkeypatch.setattr(
            perf, "clock", lambda: calls.append(None) or real_clock()
        )
        perf.counters.enabled = False
        self._run()
        assert not calls
        assert not perf.counters.stages

    def test_enabled_counters_record_kernel_and_draw_stages(self):
        perf.counters.enabled = True
        self._run()
        stages = perf.counters.stages
        assert "kernel.dp.setup" in stages
        assert "kernel.dp.timeline" in stages
        assert "kernel.serve.interval" in stages
        assert "draws.channel_refill" in stages
        assert "fused.run" in stages
        assert stages["kernel.dp.setup"].calls == 40
        # Workspace mode: buffer allocations happen at bind, not per
        # interval — the bind stage carries allocs but zero timed calls.
        bind = stages["kernel.dp.bind_workspace"]
        assert bind.allocs > 0 and bind.calls == 0

    def test_enabled_run_is_bit_identical_to_disabled(self):
        perf.counters.enabled = False
        cold = self._run()
        perf.counters.enabled = True
        hot = self._run()
        assert cold.points == hot.points


class TestDrawBufferAllocRegression:
    """Steady-state refills must reuse persistent buffers, not allocate.

    Refill buffers are allocated once per chunked-draw stream on its
    first chunk; every later refill writes into the cached buffer with
    ``Generator.random(out=...)``.  A regression to per-refill
    allocation shows up as allocs growing with the interval count.
    """

    def _allocs(self, num_intervals, stage):
        from repro import run_simulation_batch

        perf.counters.reset()
        perf.counters.enabled = True
        run_simulation_batch(
            video_symmetric_spec(0.6, num_links=6),
            DBDPPolicy(),
            num_intervals,
            (0, 1, 2),
            backend="numpy",
        )
        stat = perf.counters.stages[stage]
        return stat.allocs, stat.calls

    @pytest.mark.parametrize(
        "stage", ["draws.uniform_refill", "draws.channel_refill"]
    )
    def test_refill_allocs_do_not_grow_with_intervals(self, stage):
        # 80 intervals -> a couple of 64-deep chunks; 400 -> several
        # more.  Calls must grow with the chunk count, allocations must
        # not (first-chunk buffer allocation only).
        short_allocs, short_calls = self._allocs(80, stage)
        long_allocs, long_calls = self._allocs(400, stage)
        assert long_calls > short_calls
        assert long_allocs == short_allocs

    def test_free_mode_refills_are_alloc_steady_too(self):
        from repro import run_simulation_batch

        perf.counters.reset()
        perf.counters.enabled = True
        run_simulation_batch(
            video_symmetric_spec(0.6, num_links=6),
            DBDPPolicy(),
            600,
            (0, 1, 2),
            backend="numpy",
            rng="free",
        )
        stat = perf.counters.stages["draws.uniform_refill"]
        # Free mode draws the single-pair DP candidate as one integer
        # block per chunk: one allocation per refill call at most, plus
        # the persistent buffers' first-chunk allocations.
        assert stat.allocs <= stat.calls + 4


class TestEldfWeightBufferReuse:
    """ELDF's ``f(d+) * p`` weight plane must live in the workspace.

    The serve-order stage evaluates the influence function into a
    persistent ``(S, N)`` buffer allocated at bind (influence functions
    accept ``out=``), so steady-state intervals allocate nothing for the
    weight plane.  A regression to per-interval allocation shows up here
    as ``value_array`` ignoring ``out=`` or ``_service_orders`` no
    longer routing through the workspace buffer.
    """

    def _sim(self, influence=None):
        from repro import ELDFPolicy
        from repro.sim.batch_sim import BatchIntervalSimulator

        kwargs = {} if influence is None else {"influence": influence}
        return BatchIntervalSimulator(
            video_symmetric_spec(0.6, num_links=8),
            ELDFPolicy(**kwargs),
            seeds=(0, 1, 2),
            validate=False,
            backend="numpy",
        )

    def test_workspace_owns_a_persistent_weight_plane(self):
        sim = self._sim()
        w = sim.kernel._ws
        assert w.eldf_w.shape == (3, 8)
        assert w.eldf_w.dtype == np.float64

    def test_influence_out_param_writes_in_place(self):
        from repro.core.influence import (
            LinearInfluence,
            LogInfluence,
            PaperLogInfluence,
            PowerInfluence,
            ScaledInfluence,
        )

        debts = np.abs(np.random.default_rng(7).normal(size=(3, 8)))
        buf = np.empty_like(debts)
        for inf in (
            LinearInfluence(2.0),
            PowerInfluence(1.5),
            LogInfluence(10.0, 2.0),
            PaperLogInfluence(),
            ScaledInfluence(PaperLogInfluence(), 3.0),
        ):
            expected = inf.value_array(debts)
            got = inf.value_array(debts, out=buf)
            assert got is buf, inf
            np.testing.assert_array_equal(got, expected)

    def test_service_orders_route_through_the_workspace_buffer(self):
        sim = self._sim()
        kern = sim.kernel
        w = kern._ws
        debts = np.abs(np.random.default_rng(3).normal(size=(3, 8)))
        order = kern._service_orders(0, debts)
        expected_w = kern.influence.value_array(debts) * kern._reliabilities
        # The radix-sort trick negates the persistent buffer's int64 view
        # in place, so after the call the workspace plane holds exactly
        # the negated bit patterns of the expected weights — proof the
        # evaluation landed in the buffer and not a fresh temporary.
        after = w.eldf_w.view(np.int64).copy()
        np.negative(after, out=after)
        np.testing.assert_array_equal(after.view(np.float64), expected_w)
        np.testing.assert_array_equal(
            order, np.argsort(-expected_w, axis=1, kind="stable")
        )
