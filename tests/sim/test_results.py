"""Tests for SimulationResult metrics and trajectories."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IntervalOutcome
from repro.sim.results import SimulationResult


def make_result(deliveries, requirements, arrivals=None):
    deliveries = np.asarray(deliveries)
    requirements = np.asarray(requirements, dtype=float)
    result = SimulationResult("test", requirements)
    for k in range(deliveries.shape[0]):
        row = deliveries[k]
        arr = row if arrivals is None else np.asarray(arrivals)[k]
        result.record(
            arr,
            IntervalOutcome(
                deliveries=row,
                attempts=row,
                busy_time_us=float(row.sum()),
                overhead_time_us=1.0,
                collisions=0,
            ),
        )
    return result


class TestShapes:
    def test_dimensions(self):
        result = make_result([[1, 0], [0, 1], [1, 1]], [0.5, 0.5])
        assert result.num_intervals == 3
        assert result.num_links == 2
        assert result.deliveries.shape == (3, 2)
        assert result.busy_time_us.shape == (3,)

    def test_priorities_disabled_by_default(self):
        result = make_result([[1]], [1.0])
        with pytest.raises(RuntimeError):
            _ = result.priorities


class TestDeficiency:
    def test_fulfilled(self):
        result = make_result([[1, 1]] * 10, [0.9, 0.5])
        assert result.total_deficiency() == 0.0

    def test_partial(self):
        result = make_result([[0, 1]] * 10, [0.9, 0.5])
        assert result.total_deficiency() == pytest.approx(0.9)
        np.testing.assert_allclose(result.per_link_deficiency(), [0.9, 0.0])

    def test_upto_prefix(self):
        result = make_result([[0], [1], [1], [1]], [1.0])
        assert result.total_deficiency(upto=1) == pytest.approx(1.0)
        assert result.total_deficiency(upto=2) == pytest.approx(0.5)
        assert result.total_deficiency(upto=0) == pytest.approx(1.0)

    def test_trajectory_matches_pointwise(self):
        rng = np.random.default_rng(0)
        deliveries = rng.integers(0, 3, size=(40, 3))
        result = make_result(deliveries, [1.2, 0.7, 1.9])
        trajectory = result.deficiency_trajectory()
        for k in (1, 7, 25, 40):
            assert trajectory[k - 1] == pytest.approx(result.total_deficiency(upto=k))

    def test_trajectory_stride(self):
        result = make_result([[1]] * 10, [0.5])
        assert result.deficiency_trajectory(stride=5).shape == (2,)
        with pytest.raises(ValueError):
            result.deficiency_trajectory(stride=0)


class TestThroughputViews:
    def test_running_timely_throughput(self):
        result = make_result([[0], [1], [1]], [1.0])
        np.testing.assert_allclose(
            result.running_timely_throughput(0), [0.0, 0.5, 2 / 3]
        )

    def test_timely_throughput(self):
        result = make_result([[2, 0], [0, 2]], [1.0, 1.0])
        np.testing.assert_allclose(result.timely_throughput(), [1.0, 1.0])


class TestSummary:
    def test_summary_fields(self):
        result = make_result([[1, 1]] * 5, [0.5, 0.5])
        summary = result.summary()
        assert summary.policy == "test"
        assert summary.fulfilled
        assert summary.num_intervals == 5
        assert summary.mean_overhead_us == pytest.approx(1.0)
        assert summary.total_collisions == 0
        assert "policy" in summary.as_dict()

    def test_unfulfilled_flag(self):
        result = make_result([[0]] * 5, [0.5])
        assert not result.summary().fulfilled
