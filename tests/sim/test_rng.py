"""Tests for reproducible random-stream management."""

from __future__ import annotations

import numpy as np

from repro import RngBundle


class TestRngBundle:
    def test_same_seed_same_streams(self):
        a, b = RngBundle(42), RngBundle(42)
        assert a.channel.random(5).tolist() == b.channel.random(5).tolist()
        assert a.arrivals.random(5).tolist() == b.arrivals.random(5).tolist()

    def test_different_seeds_differ(self):
        a, b = RngBundle(1), RngBundle(2)
        assert a.channel.random(5).tolist() != b.channel.random(5).tolist()

    def test_streams_are_independent_by_name(self):
        bundle = RngBundle(0)
        assert bundle.channel.random(5).tolist() != bundle.policy.random(5).tolist()

    def test_stream_creation_order_irrelevant(self):
        """The 'channel' stream is identical whether or not other streams
        were touched first — critical for cross-run comparability."""
        a = RngBundle(7)
        _ = a.arrivals.random(100)  # consume another stream first
        first = a.channel.random(3).tolist()
        b = RngBundle(7)
        second = b.channel.random(3).tolist()
        assert first == second

    def test_stream_is_cached(self):
        bundle = RngBundle(0)
        assert bundle.stream("x") is bundle.stream("x")

    def test_shared_stream_models_common_seed(self):
        """Two 'devices' with the same master seed derive the same C(k)
        sequence from the shared stream (Step 1 of Algorithm 2)."""
        device_a = RngBundle(99).shared
        device_b = RngBundle(99).shared
        draws_a = [int(device_a.integers(1, 20)) for _ in range(50)]
        draws_b = [int(device_b.integers(1, 20)) for _ in range(50)]
        assert draws_a == draws_b
