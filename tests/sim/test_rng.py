"""Tests for reproducible random-stream management."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BatchRngBundle, RngBundle


class TestRngBundle:
    def test_same_seed_same_streams(self):
        a, b = RngBundle(42), RngBundle(42)
        assert a.channel.random(5).tolist() == b.channel.random(5).tolist()
        assert a.arrivals.random(5).tolist() == b.arrivals.random(5).tolist()

    def test_different_seeds_differ(self):
        a, b = RngBundle(1), RngBundle(2)
        assert a.channel.random(5).tolist() != b.channel.random(5).tolist()

    def test_streams_are_independent_by_name(self):
        bundle = RngBundle(0)
        assert bundle.channel.random(5).tolist() != bundle.policy.random(5).tolist()

    def test_stream_creation_order_irrelevant(self):
        """The 'channel' stream is identical whether or not other streams
        were touched first — critical for cross-run comparability."""
        a = RngBundle(7)
        _ = a.arrivals.random(100)  # consume another stream first
        first = a.channel.random(3).tolist()
        b = RngBundle(7)
        second = b.channel.random(3).tolist()
        assert first == second

    def test_stream_is_cached(self):
        bundle = RngBundle(0)
        assert bundle.stream("x") is bundle.stream("x")

    def test_shared_stream_models_common_seed(self):
        """Two 'devices' with the same master seed derive the same C(k)
        sequence from the shared stream (Step 1 of Algorithm 2)."""
        device_a = RngBundle(99).shared
        device_b = RngBundle(99).shared
        draws_a = [int(device_a.integers(1, 20)) for _ in range(50)]
        draws_b = [int(device_b.integers(1, 20)) for _ in range(50)]
        assert draws_a == draws_b


class TestBatchRngBundle:
    def test_per_seed_streams_are_scalar_identical(self):
        """Seed s of a batch bundle draws the very same sequences as the
        scalar engine's RngBundle(s) — the foundation of sync-mode
        cross-validation."""
        batch = BatchRngBundle((4, 9, 17))
        for seed, bundle in zip(batch.seeds, batch.bundles):
            scalar = RngBundle(seed)
            for name in ("arrivals", "channel", "policy", "shared"):
                np.testing.assert_array_equal(
                    bundle.stream(name).random(20),
                    scalar.stream(name).random(20),
                )

    def test_per_seed_accessor_order(self):
        batch = BatchRngBundle((2, 7))
        streams = batch.per_seed("channel")
        assert len(streams) == 2
        np.testing.assert_array_equal(
            streams[1].random(5), RngBundle(7).channel.random(5)
        )

    def test_batch_streams_reproducible_from_seed_tuple(self):
        a = BatchRngBundle((0, 1, 2)).batch_stream("channel").random(10)
        b = BatchRngBundle((0, 1, 2)).batch_stream("channel").random(10)
        np.testing.assert_array_equal(a, b)

    def test_batch_streams_depend_on_all_seeds(self):
        """Changing any seed (or the order) reseeds every batch stream:
        the stack is one joint random experiment."""
        base = BatchRngBundle((0, 1, 2)).batch_stream("channel").random(10)
        changed = BatchRngBundle((0, 1, 3)).batch_stream("channel").random(10)
        reordered = BatchRngBundle((2, 1, 0)).batch_stream("channel").random(10)
        assert not np.array_equal(base, changed)
        assert not np.array_equal(base, reordered)

    def test_batch_streams_independent_by_name(self):
        batch = BatchRngBundle((0, 1))
        assert not np.array_equal(
            batch.batch_stream("channel").random(10),
            batch.batch_stream("policy").random(10),
        )

    def test_batch_namespace_never_collides_with_per_seed(self):
        """batch_stream('channel') must not alias any scalar stream, even
        for a single-seed batch whose entropy equals the scalar seed."""
        batch = BatchRngBundle((5,))
        scalar = RngBundle(5)
        assert not np.array_equal(
            batch.batch_stream("channel").random(10),
            scalar.stream("channel").random(10),
        )

    def test_batch_stream_is_cached(self):
        batch = BatchRngBundle((0,))
        assert batch.batch_stream("x") is batch.batch_stream("x")

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            BatchRngBundle(())
