"""Tests for heterogeneous spec stacks (the fused engine's row model).

A :class:`SpecStack` lets every batch-engine row carry its own spec as
long as link count, timing and channel family line up.  These tests cover
the validation contract, the per-row parameter matrices, the grouped
arrival sampling, and — the load-bearing claim — that a heterogeneous
stack simulated with ``sync_rng=True`` reproduces each row's scalar
simulation bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    DBDPPolicy,
    GilbertElliottChannel,
    LDFPolicy,
    NetworkSpec,
    idealized_timing,
    run_simulation,
)
from repro.experiments.configs import video_symmetric_spec
from repro.sim.batch_sim import BatchIntervalSimulator
from repro.sim.spec_stack import SpecStack


def bernoulli_spec(p_arrival, num_links=4, budget=8):
    return NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(num_links, p_arrival),
        channel=BernoulliChannel.symmetric(num_links, 0.7),
        timing=idealized_timing(budget),
        delivery_ratios=0.8,
    )


class TestValidation:
    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SpecStack(())

    def test_link_count_mismatch_names_row(self):
        with pytest.raises(ValueError, match="row 1"):
            SpecStack([bernoulli_spec(0.5, num_links=4),
                       bernoulli_spec(0.5, num_links=5)])

    def test_timing_mismatch_names_row(self):
        with pytest.raises(ValueError, match="row 1"):
            SpecStack([bernoulli_spec(0.5, budget=8),
                       bernoulli_spec(0.5, budget=9)])

    def test_stateful_channel_rejected(self):
        bad = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(4, 0.5),
            channel=GilbertElliottChannel(4),
            timing=idealized_timing(8),
            delivery_ratios=0.8,
        )
        with pytest.raises(TypeError, match="GilbertElliottChannel"):
            SpecStack([bernoulli_spec(0.5), bad])

    def test_non_spec_row_rejected(self):
        with pytest.raises(TypeError, match="row 1"):
            SpecStack([bernoulli_spec(0.5), "not a spec"])


class TestProperties:
    def test_broadcast_is_homogeneous(self):
        stack = SpecStack.broadcast(bernoulli_spec(0.5), 3)
        assert stack.num_rows == 3
        assert stack.homogeneous

    def test_heterogeneous_matrices_follow_rows(self):
        a, b = video_symmetric_spec(0.45, num_links=4), video_symmetric_spec(
            0.65, num_links=4
        )
        stack = SpecStack([a, b, a])
        assert not stack.homogeneous
        rel = stack.reliability_matrix
        req = stack.requirement_matrix
        assert rel.shape == req.shape == (3, 4)
        np.testing.assert_array_equal(rel[0], a.reliabilities)
        np.testing.assert_array_equal(rel[1], b.reliabilities)
        np.testing.assert_array_equal(req[2], a.requirement_vector)

    def test_max_arrivals_is_stack_wide(self):
        a, b = video_symmetric_spec(0.4, num_links=4), video_symmetric_spec(
            0.7, num_links=4
        )
        stack = SpecStack([a, b])
        assert stack.max_arrivals_per_link == max(
            a.arrivals.max_per_link, b.arrivals.max_per_link
        )


class TestArrivalSampling:
    def test_block_shape_and_range(self):
        stack = SpecStack([video_symmetric_spec(0.5, num_links=4)] * 3)
        block = stack.sample_arrival_block(np.random.default_rng(0), 16)
        assert block.shape == (16, 3, 4)
        assert block.dtype == np.int64
        assert block.min() >= 0
        assert block.max() <= stack.max_arrivals_per_link

    def test_grouped_rows_share_one_draw(self):
        """Rows with identical arrival processes must be filled from one
        flat ``sample_batch`` call, in row order."""
        a = video_symmetric_spec(0.45, num_links=4)
        b = video_symmetric_spec(0.65, num_links=4)
        stack = SpecStack([a, b, a])
        block = stack.sample_arrival_block(np.random.default_rng(7), 5)
        rng = np.random.default_rng(7)
        flat_a = a.arrivals.sample_batch(rng, 10).reshape(5, 2, 4)
        flat_b = b.arrivals.sample_batch(rng, 5).reshape(5, 1, 4)
        np.testing.assert_array_equal(block[:, [0, 2]], flat_a)
        np.testing.assert_array_equal(block[:, [1]], flat_b)

    def test_bad_depth_rejected(self):
        stack = SpecStack.broadcast(bernoulli_spec(0.5), 2)
        with pytest.raises(ValueError, match="depth"):
            stack.sample_arrival_block(np.random.default_rng(0), 0)


class TestHeterogeneousSimulation:
    """The tentpole guarantee: per-row specs, bit-exact per-row physics."""

    @pytest.mark.parametrize("factory", [DBDPPolicy, LDFPolicy])
    def test_sync_rows_match_scalar_per_spec(self, factory):
        alphas = (0.45, 0.60, 0.45, 0.70)
        seeds = (3, 1, 4, 1)
        specs = [video_symmetric_spec(a, num_links=4) for a in alphas]
        sim = BatchIntervalSimulator(
            specs, factory(), seeds, sync_rng=True,
            row_policies=[factory() for _ in seeds],
        )
        batch = sim.run(200)
        for s, (spec, seed) in enumerate(zip(specs, seeds)):
            scalar = run_simulation(spec, factory(), 200, seed=seed)
            np.testing.assert_array_equal(
                batch.deliveries[:, s], scalar.deliveries
            )
            np.testing.assert_array_equal(batch.arrivals[:, s], scalar.arrivals)
            np.testing.assert_array_equal(batch.attempts[:, s], scalar.attempts)

    def test_row_count_must_match_seed_count(self):
        specs = [video_symmetric_spec(0.5, num_links=4)] * 3
        with pytest.raises(ValueError, match="rows"):
            BatchIntervalSimulator(specs, LDFPolicy(), (0, 1), sync_rng=True)
