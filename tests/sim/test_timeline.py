"""Tests for the ASCII timeline renderer."""

from __future__ import annotations

import pytest

from repro.experiments.configs import low_latency_spec
from repro.sim.event_sim import EventDrivenDPSimulator
from repro.sim.timeline import render_interval, render_intervals
from repro.sim.tracing import IntervalEvent, TraceRecorder, TransmissionEvent


@pytest.fixture(scope="module")
def traced():
    recorder = TraceRecorder()
    spec = low_latency_spec(0.7)
    sim = EventDrivenDPSimulator(spec, seed=3, trace=recorder)
    sim.run(5)
    return recorder, spec


class TestRenderInterval:
    def test_structure(self, traced):
        recorder, spec = traced
        text = render_interval(
            recorder, 0, spec.timing.interval_us, spec.num_links
        )
        lines = text.splitlines()
        assert lines[0].startswith("interval 0")
        assert "sigma" in lines[0]
        assert lines[1].startswith("t(us)")
        assert len(lines) == 2 + spec.num_links
        assert all(line.startswith("link") for line in lines[2:])

    def test_transmissions_rendered(self, traced):
        recorder, spec = traced
        text = render_interval(
            recorder, 0, spec.timing.interval_us, spec.num_links
        )
        assert "X" in text
        # Outcome markers present: success, and (candidates) empty packets.
        assert "+" in text or "x" in text

    def test_columns_mostly_single_transmitter(self, traced):
        """The visual counterpart of collision-freedom.

        A column may show two marks when one transmission ends and the next
        begins inside the same rendered cell (pure quantization); genuine
        overlap is ruled out by ``TraceRecorder.verify_no_overlap``.  So:
        never three transmitters in a column, and double-marked columns are
        a small minority.
        """
        recorder, spec = traced
        recorder.verify_no_overlap()
        for k in range(3):
            text = render_interval(
                recorder, k, spec.timing.interval_us, spec.num_links, width=72
            )
            rows = [line.split(" ", 2)[-1] for line in text.splitlines()[2:]]
            rows = [line[-72:] for line in rows]
            doubles = 0
            for column in range(72):
                busy = sum(1 for row in rows if row[column] != ".")
                assert busy <= 2, f"column {column} in interval {k}"
                doubles += busy == 2
            assert doubles <= 72 // 5

    def test_synthetic_trace(self):
        recorder = TraceRecorder()
        recorder.record(IntervalEvent(0.0, 0, priorities=(2, 1)))
        recorder.record(
            TransmissionEvent(0.0, 0, link=1, duration_us=500.0, kind="data", delivered=True)
        )
        recorder.record(
            TransmissionEvent(500.0, 0, link=0, duration_us=250.0, kind="empty")
        )
        text = render_interval(recorder, 0, 1000.0, 2, width=40)
        lines = text.splitlines()
        link0, link1 = lines[2], lines[3]
        assert "o" in link0  # empty marker
        assert "+" in link1  # delivered marker
        # Link 1 occupies the first half of the strip.
        assert link1.split()[-1][:19].count("X") == 19

    def test_missing_interval_event_falls_back_to_tiling(self):
        recorder = TraceRecorder()
        recorder.record(
            TransmissionEvent(1000.0, 1, link=0, duration_us=100.0, kind="data", delivered=False)
        )
        text = render_interval(recorder, 1, 1000.0, 1, width=20)
        assert "x" in text  # loss marker at the strip start

    def test_validation(self, traced):
        recorder, spec = traced
        with pytest.raises(ValueError):
            render_interval(recorder, 0, spec.timing.interval_us, 2, width=5)
        with pytest.raises(ValueError):
            render_interval(recorder, 0, 0.0, 2)


class TestRenderIntervals:
    def test_multiple(self, traced):
        recorder, spec = traced
        text = render_intervals(
            recorder, [0, 1, 2], spec.timing.interval_us, spec.num_links
        )
        assert text.count("interval ") == 3
