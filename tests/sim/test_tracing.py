"""Tests for the structured trace recorder and its event-sim integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.configs import low_latency_spec
from repro.sim.event_sim import EventDrivenDPSimulator
from repro.sim.tracing import (
    IntervalEvent,
    SwapEvent,
    TraceRecorder,
    TransmissionEvent,
)


class TestRecorder:
    def test_append_and_filter(self):
        recorder = TraceRecorder()
        recorder.record(TransmissionEvent(0.0, 0, link=1, duration_us=10.0, kind="data"))
        recorder.record(SwapEvent(20.0, 0, candidate_priority=1, down_link=0, up_link=1, committed=True))
        recorder.record(IntervalEvent(20.0, 1, priorities=(1, 2)))
        assert len(recorder) == 3
        assert len(recorder.transmissions()) == 1
        assert len(recorder.swaps()) == 1
        assert len(recorder.interval_events()) == 1
        assert len(recorder.events(SwapEvent)) == 1

    def test_link_filter(self):
        recorder = TraceRecorder()
        for link in (0, 1, 0):
            recorder.record(
                TransmissionEvent(0.0, 0, link=link, duration_us=1.0, kind="data")
            )
        assert len(recorder.transmissions(link=0)) == 2

    def test_committed_filter(self):
        recorder = TraceRecorder()
        for committed in (True, False, True):
            recorder.record(
                SwapEvent(0.0, 0, candidate_priority=1, down_link=0, up_link=1, committed=committed)
            )
        assert len(recorder.swaps(committed_only=True)) == 2

    def test_capacity_drops_oldest(self):
        recorder = TraceRecorder(capacity=2)
        for i in range(5):
            recorder.record(IntervalEvent(float(i), i, priorities=(1,)))
        assert len(recorder) == 2
        assert recorder.dropped == 3
        assert recorder.interval_events()[0].interval == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_overlap_detection(self):
        recorder = TraceRecorder()
        recorder.record(TransmissionEvent(0.0, 0, link=0, duration_us=10.0, kind="data"))
        recorder.record(TransmissionEvent(5.0, 0, link=1, duration_us=10.0, kind="data"))
        with pytest.raises(AssertionError, match="overlap"):
            recorder.verify_no_overlap()

    def test_utilization(self):
        recorder = TraceRecorder()
        recorder.record(TransmissionEvent(0.0, 0, link=0, duration_us=500.0, kind="data"))
        recorder.record(TransmissionEvent(600.0, 0, link=1, duration_us=500.0, kind="data"))
        recorder.record(TransmissionEvent(0.0, 1, link=0, duration_us=100.0, kind="data"))
        assert recorder.channel_utilization(0, 2000.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            recorder.channel_utilization(0, 0.0)


class TestEventSimIntegration:
    @pytest.fixture(scope="class")
    def traced_run(self):
        recorder = TraceRecorder()
        sim = EventDrivenDPSimulator(
            low_latency_spec(0.7), seed=5, trace=recorder
        )
        result = sim.run(200)
        return recorder, result, sim.spec

    def test_no_overlapping_transmissions(self, traced_run):
        recorder, _, _ = traced_run
        recorder.verify_no_overlap()  # collision-freedom audit

    def test_transmission_counts_match_result(self, traced_run):
        recorder, result, _ = traced_run
        data = [e for e in recorder.transmissions() if e.kind == "data"]
        assert len(data) == int(result.attempts.sum())
        delivered = sum(1 for e in data if e.delivered)
        assert delivered == int(result.deliveries.sum())

    def test_one_interval_event_per_interval(self, traced_run):
        recorder, result, _ = traced_run
        assert len(recorder.interval_events()) == result.num_intervals

    def test_swap_events_recorded_each_interval(self, traced_run):
        recorder, result, _ = traced_run
        # Single-pair protocol: exactly one handshake record per interval.
        assert len(recorder.swaps()) == result.num_intervals

    def test_transmissions_within_their_interval(self, traced_run):
        recorder, _, spec = traced_run
        t = spec.timing.interval_us
        for event in recorder.transmissions():
            start = event.interval * t
            assert start - 1e-6 <= event.time_us
            assert event.end_us <= start + t + 1e-6

    def test_empty_packets_only_from_candidates(self, traced_run):
        recorder, _, _ = traced_run
        empties = [e for e in recorder.transmissions() if e.kind == "empty"]
        swaps_by_interval = {e.interval: e for e in recorder.swaps()}
        for event in empties:
            swap = swaps_by_interval[event.interval]
            assert event.link in (swap.down_link, swap.up_link)


class TestJsonlPersistence:
    def test_round_trip(self):
        import io

        from repro.experiments.configs import low_latency_spec
        from repro.sim.tracing import dump_jsonl, load_jsonl

        recorder = TraceRecorder()
        EventDrivenDPSimulator(
            low_latency_spec(0.7), seed=8, trace=recorder
        ).run(30)
        buffer = io.StringIO()
        count = dump_jsonl(recorder, buffer)
        assert count == len(recorder)
        buffer.seek(0)
        loaded = load_jsonl(buffer)
        assert loaded.events() == recorder.events()
        loaded.verify_no_overlap()

    def test_blank_lines_skipped(self):
        import io

        from repro.sim.tracing import load_jsonl

        loaded = load_jsonl(io.StringIO("\n\n"))
        assert len(loaded) == 0

    def test_unknown_type_rejected(self):
        import io

        from repro.sim.tracing import load_jsonl

        with pytest.raises(ValueError, match="unknown trace event"):
            load_jsonl(io.StringIO('{"type": "mystery", "time_us": 0}\n'))
