"""Lint: policy dispatch must go through the registry.

The policy registry (:mod:`repro.core.registry`) is the single place
allowed to decide behaviour from a policy's type.  Everywhere else —
kernel selection, engine fallbacks, cache fingerprints, CLI construction
— consults the registered :class:`~repro.core.registry.PolicyDescriptor`
and its capability flags.  This test (mirrored by a CI grep step) fails
if ``isinstance(x, SomePolicy)``-style dispatch reappears outside the
registry, so the refactor cannot silently regress.

``isinstance`` checks on *non-policy* types (channels, arrival
processes, swap-bias components) are fine and not matched.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Matches isinstance(...) whose class argument names a policy type:
#: the ``*Policy`` naming convention, the generic ``DPProtocol`` family,
#: or the ``IntervalMac`` base class.  Kept in sync with the CI lint
#: step in .github/workflows/ci.yml.
PATTERN = re.compile(
    r"isinstance\([^)]*,\s*\(?[^)]*(Policy|DPProtocol|IntervalMac)"
)

#: The one module allowed to inspect policy types.
ALLOWED = {SRC / "core" / "registry.py"}


def test_no_policy_isinstance_outside_registry():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if PATTERN.search(line):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "policy-type dispatch outside repro/core/registry.py — route it "
        "through the policy registry instead:\n" + "\n".join(offenders)
    )
