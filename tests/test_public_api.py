"""Public API surface tests.

The top-level ``repro`` namespace is the contract downstream users code
against; these tests pin it: everything in ``__all__`` resolves, the core
objects are importable exactly where README says, and the package version
matches the build metadata.
"""

from __future__ import annotations

import importlib

import pytest

import repro


class TestAllExports:
    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_headline_classes_present(self):
        for name in (
            "DBDPPolicy",
            "DPProtocol",
            "LDFPolicy",
            "ELDFPolicy",
            "FCSMAPolicy",
            "DCFPolicy",
            "FrameCSMAPolicy",
            "RoundRobinPolicy",
            "StaticPriorityPolicy",
            "EstimatedDBDPPolicy",
            "NetworkSpec",
            "IntervalSimulator",
            "run_simulation",
        ):
            assert name in repro.__all__, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestSubpackageLayout:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core.dp_protocol",
            "repro.core.dbdp",
            "repro.core.eldf",
            "repro.core.fcsma",
            "repro.core.dcf",
            "repro.core.frame_csma",
            "repro.core.round_robin",
            "repro.core.estimation",
            "repro.phy.timing",
            "repro.phy.channel",
            "repro.traffic.arrivals",
            "repro.sim.interval_sim",
            "repro.sim.event_sim",
            "repro.sim.engine",
            "repro.sim.tracing",
            "repro.sim.timeline",
            "repro.analysis.markov",
            "repro.analysis.stationary",
            "repro.analysis.multipair",
            "repro.analysis.feasibility",
            "repro.analysis.region",
            "repro.analysis.optimal_value",
            "repro.analysis.capacity",
            "repro.analysis.drift",
            "repro.analysis.overhead",
            "repro.analysis.empirical_chain",
            "repro.analysis.metrics",
            "repro.analysis.convergence",
            "repro.experiments.figures",
            "repro.experiments.extensions",
            "repro.experiments.summary",
            "repro.experiments.convergence_study",
            "repro.experiments.parallel",
            "repro.experiments.charts",
            "repro.experiments.cli",
        ],
    )
    def test_module_imports(self, module):
        importlib.import_module(module)

    def test_policies_share_the_interval_mac_interface(self):
        from repro import IntervalMac

        for policy_class in (
            repro.DBDPPolicy,
            repro.LDFPolicy,
            repro.FCSMAPolicy,
            repro.DCFPolicy,
            repro.FrameCSMAPolicy,
            repro.RoundRobinPolicy,
            repro.StaticPriorityPolicy,
        ):
            assert issubclass(policy_class, IntervalMac), policy_class

    def test_docstrings_on_public_classes(self):
        """Every exported class/function documents itself."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"
