"""Boundary-link conservation: one owner, one serve, no double-counting.

Property test over the per-interval traces of a packed multi-cell run:
a boundary link (member of two cells) is never served in both cells in
the same interval, only its per-interval *owner* membership ever sees
arrivals, and the aggregated per-link delivery sums equal the plain sum
over memberships (no double-counting).  Asserted across all RNG
disciplines and kernel backends.
"""

import numpy as np
import pytest

from repro import DBDPPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.sim import jit_kernels
from repro.sim.batch_kernels import KERNEL_BACKENDS
from repro.topology import BoundaryOwnerDraws, TopologySimulator, grid_cells

SEEDS = (0, 1, 2)
INTERVALS = 80
NUM_LINKS = 12
NUM_CELLS = 3


@pytest.fixture
def jit_runnable(monkeypatch):
    if not jit_kernels.HAS_NUMBA:
        monkeypatch.setattr(jit_kernels, "force_python", True)
    return jit_kernels.HAS_NUMBA


def _run(rng, backend):
    spec = video_symmetric_spec(0.6, num_links=NUM_LINKS)
    topo = grid_cells(NUM_LINKS, NUM_CELLS, cross_cell_fraction=0.5)
    assert topo.boundary_links, "property test needs boundary links"
    sim = TopologySimulator(
        spec, DBDPPolicy(), SEEDS, topo,
        rng=rng, backend=backend, record_traces=True,
    )
    result = sim.run(INTERVALS)
    return topo, sim, result


@pytest.mark.parametrize("rng", ["sync", None, "free"])
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_boundary_conservation(rng, backend, jit_runnable):
    if backend == "legacy" and rng == "free":
        pytest.skip("rng='free' is not available on the legacy backend")
    topo, sim, result = _run(rng, backend)
    traces = sim.sim.result
    S = len(SEEDS)
    for link in topo.boundary_links:
        mships = topo.memberships[link]
        assert len(mships) >= 2
        served = [
            traces.deliveries[:, c * S : (c + 1) * S, i] for c, i in mships
        ]
        # Never served by two memberships in the same (interval, seed).
        serving = sum((d > 0).astype(int) for d in served)
        assert serving.max() <= 1, (
            f"boundary link {link} served in two cells at once "
            f"(rng={rng}, backend={backend})"
        )
        # No double-counting: the aggregated per-link sum is the plain
        # sum over memberships.
        total = sum(d.sum(axis=0) for d in served)
        np.testing.assert_array_equal(result.delivery_sums[:, link], total)


@pytest.mark.parametrize("rng", ["sync", None, "free"])
def test_only_the_owner_sees_arrivals(rng):
    topo, sim, _ = _run(rng, "numpy")
    traces = sim.sim.result
    S = len(SEEDS)
    # Replay the owner stream: a pure function of (topology, seeds),
    # independent of the simulation's own draw discipline.
    draws = BoundaryOwnerDraws(topo, SEEDS)
    for k in range(INTERVALS):
        owners = draws.owners_at(k)  # (S, B)
        for b, link in enumerate(topo.boundary_links):
            for j, (c, i) in enumerate(topo.memberships[link]):
                losers = np.flatnonzero(owners[:, b] != j)
                assert (
                    traces.arrivals[k, c * S + losers, i] == 0
                ).all(), (
                    f"non-owner membership {j} of link {link} saw "
                    f"arrivals at interval {k} (rng={rng})"
                )


def test_owner_stream_is_deterministic():
    topo = grid_cells(NUM_LINKS, NUM_CELLS, cross_cell_fraction=0.5)
    a = BoundaryOwnerDraws(topo, SEEDS)
    b = BoundaryOwnerDraws(topo, SEEDS)
    for k in range(32):
        np.testing.assert_array_equal(a.owners_at(k), b.owners_at(k))


def test_owner_stream_rejects_out_of_order_reads():
    topo = grid_cells(NUM_LINKS, NUM_CELLS, cross_cell_fraction=0.5)
    draws = BoundaryOwnerDraws(topo, SEEDS)
    draws.owners_at(0)
    with pytest.raises(RuntimeError, match="out of order"):
        draws.owners_at(5)
