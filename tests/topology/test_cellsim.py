"""Compiled cell kernel: determinism, domain checks, statistical sanity.

The C kernel is *statistically equivalent* to the numpy lowering's
``rng="free"`` discipline — same per-interval distributions, different
generator — so cross-engine checks compare seed-averaged means, never
per-seed values.  All tests skip cleanly when no system compiler is
available (the numpy engine is the portable fallback).
"""

import numpy as np
import pytest

from repro import DBDPPolicy
from repro.core import registry
from repro.experiments.configs import video_symmetric_spec
from repro.topology import grid_cells, run_topology_batch
from repro.topology import cellsim

SEEDS = tuple(range(6))
INTERVALS = 200
NUM_LINKS = 20
NUM_CELLS = 4

needs_compiler = pytest.mark.skipif(
    not cellsim.compiled_available(),
    reason=f"no compiled cell kernel: {cellsim.compile_error()}",
)


@needs_compiler
@pytest.mark.parametrize("fraction", [0.0, 0.25])
def test_compiled_runs_are_deterministic(fraction):
    spec = video_symmetric_spec(0.55, num_links=NUM_LINKS)
    topo = grid_cells(NUM_LINKS, NUM_CELLS, cross_cell_fraction=fraction)
    a = cellsim.run_topology_compiled(
        spec, DBDPPolicy(), SEEDS, topo, INTERVALS
    )
    b = cellsim.run_topology_compiled(
        spec, DBDPPolicy(), SEEDS, topo, INTERVALS
    )
    np.testing.assert_array_equal(a.delivery_sums, b.delivery_sums)
    np.testing.assert_array_equal(
        a.overhead_cell_rows, b.overhead_cell_rows
    )


@needs_compiler
def test_compiled_statistically_matches_numpy_engine():
    spec = video_symmetric_spec(0.55, num_links=NUM_LINKS)
    topo = grid_cells(NUM_LINKS, NUM_CELLS, cross_cell_fraction=0.25)
    compiled = cellsim.run_topology_compiled(
        spec, DBDPPolicy(), SEEDS, topo, INTERVALS
    )
    numpy_res = run_topology_batch(
        spec, DBDPPolicy(), SEEDS, topo, INTERVALS, rng="free"
    )
    # Different generators: compare seed-averaged network means.  With
    # S*N*K ~ 24k samples per engine the network-mean delivery rate has
    # a std of a few 1e-3; 0.05 is a >10-sigma envelope that still
    # catches any systematic divergence.
    a = compiled.mean_deliveries().mean()
    b = numpy_res.mean_deliveries().mean()
    assert abs(a - b) < 0.05, f"compiled {a} vs numpy {b}"
    oa = compiled.mean_overhead_us().mean()
    ob = numpy_res.mean_overhead_us().mean()
    assert oa > 0 and ob > 0
    assert abs(oa - ob) / ob < 0.2


@needs_compiler
def test_compiled_rejects_non_dbdp_families():
    spec = video_symmetric_spec(0.55, num_links=NUM_LINKS)
    topo = grid_cells(NUM_LINKS, NUM_CELLS)
    factory = registry.resolve_policies(["LDF"])["LDF"]
    with pytest.raises(TypeError):
        cellsim.run_topology_compiled(
            spec, factory(), SEEDS, topo, INTERVALS
        )


def test_compile_error_is_none_iff_available():
    available = cellsim.compiled_available()
    error = cellsim.compile_error()
    assert (error is None) == available
