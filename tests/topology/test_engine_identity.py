"""Disconnected topologies are bit-identical to independent per-cell sims.

The acceptance property of the multi-cell lowering: with no cross-cell
edges, row (cell, seed) of the packed run computes *per-interval*
bit-identically to row (seed) of an independent
``BatchIntervalSimulator`` bound to that cell's sliced spec and
cell-keyed streams — on every kernel backend and draw discipline.
"""

import numpy as np
import pytest

from repro import DBDPPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.sim import jit_kernels
from repro.sim.batch_kernels import KERNEL_BACKENDS
from repro.sim.batch_sim import BatchIntervalSimulator
from repro.topology import (
    TopologyResult,
    TopologySimulator,
    cell_stream_tag,
    partition_cells,
    run_topology_batch,
)

SEEDS = (0, 1, 2)
INTERVALS = 80
NUM_LINKS = 12
NUM_CELLS = 3


@pytest.fixture
def jit_runnable(monkeypatch):
    """Make backend='jit' runnable: compiled if numba is present, else
    forced through the pure-Python loop bodies."""
    if not jit_kernels.HAS_NUMBA:
        monkeypatch.setattr(jit_kernels, "force_python", True)
    return jit_kernels.HAS_NUMBA


@pytest.mark.parametrize("rng", ["sync", None, "free"])
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_disconnected_bit_identical_per_interval(rng, backend, jit_runnable):
    if backend == "legacy" and rng == "free":
        pytest.skip("rng='free' is not available on the legacy backend")
    spec = video_symmetric_spec(0.55, num_links=NUM_LINKS)
    topo = partition_cells(NUM_LINKS, NUM_CELLS)
    sim = TopologySimulator(
        spec, DBDPPolicy(), SEEDS, topo,
        rng=rng, backend=backend, record_traces=True,
    )
    sim.run(INTERVALS)
    packed = sim.sim.result
    S = len(SEEDS)
    for c in range(NUM_CELLS):
        kwargs = {} if rng == "sync" else {"stream_tag": cell_stream_tag(c)}
        independent = BatchIntervalSimulator(
            sim.packing.cell_specs[c], DBDPPolicy(), SEEDS,
            rng=rng, backend=backend, record_traces=True, **kwargs,
        ).run(INTERVALS)
        rows = slice(c * S, (c + 1) * S)
        for field in ("arrivals", "deliveries", "attempts", "collisions"):
            np.testing.assert_array_equal(
                getattr(packed, field)[:, rows],
                getattr(independent, field),
                err_msg=f"cell {c} rng={rng} backend={backend} {field}",
            )


def test_cell_subset_merge_matches_full_run():
    spec = video_symmetric_spec(0.55, num_links=NUM_LINKS)
    topo = partition_cells(NUM_LINKS, NUM_CELLS)
    policy = DBDPPolicy()
    full = TopologySimulator(spec, policy, SEEDS, topo).run(INTERVALS)
    parts = [
        TopologySimulator(
            spec, policy, SEEDS, topo, cells_subset=cells
        ).run(INTERVALS)
        for cells in ((1,), (2, 0))
    ]
    merged = TopologyResult.merge(parts)
    np.testing.assert_array_equal(full.delivery_sums, merged.delivery_sums)
    np.testing.assert_array_equal(full.collision_sums, merged.collision_sums)


def test_sharded_run_is_bit_invariant():
    spec = video_symmetric_spec(0.55, num_links=NUM_LINKS)
    topo = partition_cells(NUM_LINKS, NUM_CELLS)
    one = run_topology_batch(spec, DBDPPolicy(), SEEDS, topo, INTERVALS)
    sharded = run_topology_batch(
        spec, DBDPPolicy(), SEEDS, topo, INTERVALS, shards=2, max_workers=1
    )
    np.testing.assert_array_equal(one.delivery_sums, sharded.delivery_sums)
    np.testing.assert_array_equal(
        one.total_deficiency(), sharded.total_deficiency()
    )


def test_packing_order_invariance():
    """Reordering the packed cells does not change any cell's results."""
    spec = video_symmetric_spec(0.55, num_links=NUM_LINKS)
    topo = partition_cells(NUM_LINKS, NUM_CELLS)
    forward = TopologySimulator(
        spec, DBDPPolicy(), SEEDS, topo, cells_subset=(0, 1, 2)
    ).run(INTERVALS)
    backward = TopologySimulator(
        spec, DBDPPolicy(), SEEDS, topo, cells_subset=(2, 1, 0)
    ).run(INTERVALS)
    np.testing.assert_array_equal(
        forward.delivery_sums, backward.delivery_sums
    )


def test_non_capable_family_rejected():
    from repro.core import registry

    spec = video_symmetric_spec(0.55, num_links=NUM_LINKS)
    topo = partition_cells(NUM_LINKS, NUM_CELLS)
    factory = registry.resolve_policies(["FCSMA"])["FCSMA"]
    with pytest.raises(TypeError, match="supports_topology"):
        TopologySimulator(spec, factory(), SEEDS, topo)
