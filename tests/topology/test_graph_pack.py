"""Units for the topology graph model and the cell packing."""

import numpy as np
import pytest

from repro.experiments.configs import video_symmetric_spec
from repro.topology import (
    CellPacking,
    CellTopology,
    grid_cells,
    partition_cells,
    single_cell,
)


class TestCellTopology:
    def test_single_cell_has_no_boundary(self):
        topo = single_cell(5)
        assert topo.num_cells == 1
        assert topo.boundary_links == ()

    def test_partition_is_disconnected(self):
        topo = partition_cells(10, 3)
        assert topo.num_cells == 3
        assert topo.boundary_links == ()
        sizes = sorted(len(c) for c in topo.cells)
        assert sizes == [3, 3, 4]
        assert sorted(l for c in topo.cells for l in c) == list(range(10))

    def test_grid_cells_zero_fraction_matches_partition(self):
        assert grid_cells(12, 4, 0.0).cells == partition_cells(12, 4).cells

    def test_grid_cells_promotes_boundary_links(self):
        topo = grid_cells(12, 4, cross_cell_fraction=0.5)
        # round(0.5 * 12) = 6 wanted, capped at num_cells = 4 borders.
        assert len(topo.boundary_links) == 4
        for link in topo.boundary_links:
            assert len(topo.memberships[link]) == 2

    def test_every_link_must_be_covered(self):
        with pytest.raises(ValueError, match="belong to no cell"):
            CellTopology(4, ((0, 1), (2,)))

    def test_duplicate_within_cell_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            CellTopology(3, ((0, 1, 1), (2,)))

    def test_out_of_range_link_rejected(self):
        with pytest.raises(ValueError, match="universe"):
            CellTopology(3, ((0, 1), (2, 3)))

    def test_fingerprint_is_stable_and_sensitive(self):
        a = grid_cells(12, 4, 0.5).fingerprint()
        b = grid_cells(12, 4, 0.5).fingerprint()
        c = grid_cells(12, 4, 0.0).fingerprint()
        assert a == b
        assert a["digest"] != c["digest"]


class TestCellPacking:
    def test_cell_specs_slice_the_global_spec(self):
        spec = video_symmetric_spec(0.55, num_links=10)
        topo = partition_cells(10, 3)
        packing = CellPacking(spec, topo)
        assert packing.width == 4
        for c, cell in enumerate(topo.cells):
            cell_spec = packing.cell_specs[c]
            assert cell_spec.num_links == packing.width
            for i, link in enumerate(cell):
                assert packing.member_matrix[c, i] == link
                assert cell_spec.reliabilities[i] == spec.reliabilities[link]
                assert (
                    cell_spec.requirement_vector[i]
                    == spec.requirement_vector[link]
                )
            # Pads: dead links with no traffic and no requirement.
            for i in range(len(cell), packing.width):
                assert packing.member_matrix[c, i] == -1
                assert cell_spec.requirement_vector[i] == 0.0

    def test_boundary_requirement_split_across_memberships(self):
        spec = video_symmetric_spec(0.55, num_links=12)
        topo = grid_cells(12, 3, cross_cell_fraction=0.5)
        packing = CellPacking(spec, topo)
        for link in topo.boundary_links:
            mships = topo.memberships[link]
            shares = [
                packing.cell_specs[c].requirement_vector[i]
                for c, i in mships
            ]
            assert np.isclose(sum(shares), spec.requirement_vector[link])
            for (c, i), j in zip(mships, range(len(mships))):
                assert packing.boundary_index_matrix[c, i] >= 0
                assert packing.boundary_member_matrix[c, i] == j

    def test_aggregate_rows_sums_memberships(self):
        spec = video_symmetric_spec(0.55, num_links=6)
        topo = grid_cells(6, 3, cross_cell_fraction=1.0)
        packing = CellPacking(spec, topo)
        S = 2
        rows = np.arange(
            topo.num_cells * S * packing.width, dtype=np.int64
        ).reshape(topo.num_cells * S, packing.width)
        out = packing.aggregate_rows(rows, S)
        assert out.shape == (S, 6)
        for s in range(S):
            for link in range(6):
                expect = sum(
                    rows[c * S + s, i] for c, i in topo.memberships[link]
                )
                assert out[s, link] == expect

    def test_num_links_mismatch_rejected(self):
        spec = video_symmetric_spec(0.55, num_links=10)
        with pytest.raises(ValueError, match="topology covers"):
            CellPacking(spec, partition_cells(8, 2))
