"""Tests for arrival processes (Section II-B model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BurstyVideoArrivals,
    ConstantArrivals,
    CorrelatedBurstArrivals,
    TruncatedPoissonArrivals,
)
from repro.traffic.arrivals import (
    ArrivalProcess,
    MarkovModulatedArrivals,
    ParetoBurstArrivals,
    arrivals_from_spec,
)


def empirical_mean(process, rng, n=4000):
    return np.mean([process.sample(rng) for _ in range(n)], axis=0)


class TestBernoulliArrivals:
    def test_mean_rates(self):
        process = BernoulliArrivals(rates=(0.2, 0.9))
        np.testing.assert_allclose(process.mean_rates, [0.2, 0.9])
        assert process.max_per_link == 1

    def test_empirical_mean(self, rng):
        process = BernoulliArrivals(rates=(0.3, 0.7))
        np.testing.assert_allclose(
            empirical_mean(process, rng), [0.3, 0.7], atol=0.03
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliArrivals(rates=(1.2,))
        with pytest.raises(ValueError):
            BernoulliArrivals(rates=())


class TestBurstyVideoArrivals:
    def test_paper_mean_formula(self):
        """lambda_n = 3.5 alpha_n with the default burst_max = 6."""
        process = BurstyVideoArrivals.symmetric(3, 0.55)
        np.testing.assert_allclose(process.mean_rates, [3.5 * 0.55] * 3)

    def test_support(self, rng):
        process = BurstyVideoArrivals.symmetric(2, 0.8)
        for _ in range(500):
            sample = process.sample(rng)
            assert np.all((sample >= 0) & (sample <= 6))

    def test_burst_values_uniform(self, rng):
        process = BurstyVideoArrivals.symmetric(1, 1.0)
        values = [int(process.sample(rng)[0]) for _ in range(6000)]
        counts = np.bincount(values, minlength=7)
        assert counts[0] == 0  # alpha = 1: always a burst
        assert counts[1:].min() > 800  # each of 1..6 ~ 1000

    def test_empirical_mean(self, rng):
        process = BurstyVideoArrivals.symmetric(4, 0.5)
        np.testing.assert_allclose(
            empirical_mean(process, rng), [1.75] * 4, atol=0.12
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyVideoArrivals(alphas=(1.5,))
        with pytest.raises(ValueError):
            BurstyVideoArrivals(alphas=(0.5,), burst_max=0)


class TestConstantArrivals:
    def test_deterministic(self, rng):
        process = ConstantArrivals(counts=(2, 0, 1))
        for _ in range(5):
            np.testing.assert_array_equal(process.sample(rng), [2, 0, 1])

    def test_mean_and_max(self):
        process = ConstantArrivals(counts=(2, 0, 1))
        np.testing.assert_allclose(process.mean_rates, [2, 0, 1])
        assert process.max_per_link == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantArrivals(counts=(-1,))


class TestTruncatedPoisson:
    def test_truncation_respected(self, rng):
        process = TruncatedPoissonArrivals(poisson_rates=(10.0,), cap=4)
        for _ in range(300):
            assert process.sample(rng)[0] <= 4

    def test_mean_accounts_for_truncation(self, rng):
        process = TruncatedPoissonArrivals(poisson_rates=(3.0,), cap=4)
        theory = process.mean_rates[0]
        assert theory < 3.0  # truncation pulls the mean down
        empirical = empirical_mean(process, rng, n=8000)[0]
        assert empirical == pytest.approx(theory, abs=0.06)

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedPoissonArrivals(poisson_rates=(-1.0,))
        with pytest.raises(ValueError):
            TruncatedPoissonArrivals(poisson_rates=(1.0,), cap=0)


class TestCorrelatedBurstArrivals:
    def test_all_or_nothing(self, rng):
        process = CorrelatedBurstArrivals(num_links_=4, event_prob=0.5)
        for _ in range(300):
            sample = process.sample(rng)
            assert np.all(sample == 0) or np.all(sample >= 1)

    def test_mean(self, rng):
        process = CorrelatedBurstArrivals(
            num_links_=3, event_prob=0.4, burst_max=3
        )
        np.testing.assert_allclose(process.mean_rates, [0.8] * 3)
        np.testing.assert_allclose(
            empirical_mean(process, rng, n=8000), [0.8] * 3, atol=0.06
        )

    def test_cross_link_correlation_is_positive(self, rng):
        process = CorrelatedBurstArrivals(num_links_=2, event_prob=0.5)
        samples = np.array([process.sample(rng) for _ in range(4000)])
        corr = np.corrcoef(samples[:, 0], samples[:, 1])[0, 1]
        assert corr > 0.5


class TestMarkovModulated:
    def test_stationary_mean(self):
        process = MarkovModulatedArrivals(
            2, on_rate=0.8, off_rate=0.0, p_stay_on=0.9, p_stay_off=0.9
        )
        np.testing.assert_allclose(process.mean_rates, [0.4] * 2)

    def test_temporal_correlation(self, rng):
        """The process intentionally violates temporal independence."""
        process = MarkovModulatedArrivals(
            1, on_rate=1.0, off_rate=0.0, p_stay_on=0.95, p_stay_off=0.95
        )
        samples = np.array([process.sample(rng)[0] for _ in range(8000)], float)
        corr = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        assert corr > 0.5

    def test_support(self, rng):
        process = MarkovModulatedArrivals(3, on_rate=0.5)
        for _ in range(100):
            assert np.all(process.sample(rng) <= 1)

    def test_reset_state_restores_run_order_independence(self):
        """Two runs with the same seed and a shared process instance must
        be bit-identical once the caller resets between them."""
        process = MarkovModulatedArrivals(4, 0.7, 0.1, 0.8, 0.85)
        first = np.stack(
            [process.sample(np.random.default_rng(5)) for _ in range(1)]
        )
        for _ in range(37):  # leave the chain mid-burst
            process.sample(np.random.default_rng(9))
        process.reset_state()
        second = np.stack(
            [process.sample(np.random.default_rng(5)) for _ in range(1)]
        )
        np.testing.assert_array_equal(first, second)

    def test_initial_state_choices(self):
        on = MarkovModulatedArrivals(6, 0.5, initial_state="on")
        off = MarkovModulatedArrivals(6, 0.5, initial_state="off")
        assert on._state_on.all()
        assert not off._state_on.any()
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(6, 0.5, initial_state="maybe")

    def test_stationary_initial_state_is_deterministic(self):
        a = MarkovModulatedArrivals(
            64, 0.7, 0.1, 0.8, 0.85, initial_state="stationary"
        )
        b = MarkovModulatedArrivals(
            64, 0.7, 0.1, 0.8, 0.85, initial_state="stationary"
        )
        np.testing.assert_array_equal(a._state_on, b._state_on)
        before = a._state_on.copy()
        a.sample(np.random.default_rng(0))
        a.reset_state()
        np.testing.assert_array_equal(a._state_on, before)
        # The per-link fraction tracks the stationary distribution.
        pi_on = a._pi_on
        assert abs(a._state_on.mean() - pi_on) < 0.2

    def test_capability_surface(self):
        process = MarkovModulatedArrivals(3, 0.5)
        assert process.has_state
        assert process.state_uses_rng
        assert process.supports_batch_state
        assert not process.supports_batch_sampling
        stateless = BernoulliArrivals.symmetric(3, 0.5)
        assert not stateless.has_state
        assert stateless.stack_rows((stateless,)) is None

    def test_batch_rows_match_scalar_stream(self):
        """One stacked row consumes the generator exactly like the scalar
        sample loop, so the vectorized chain has the scalar law."""
        scalar = MarkovModulatedArrivals(5, 0.6, 0.2, 0.7, 0.9)
        rows = MarkovModulatedArrivals.stack_rows(
            (MarkovModulatedArrivals(5, 0.6, 0.2, 0.7, 0.9),)
        )
        g_rows, g_scalar = np.random.default_rng(7), np.random.default_rng(7)
        for _ in range(50):
            np.testing.assert_array_equal(
                rows.evolve(g_rows)[0], scalar.sample(g_scalar)
            )

    def test_evolve_block_matches_stepwise(self):
        procs = (
            MarkovModulatedArrivals(4, 0.6, 0.2, 0.7, 0.9),
            MarkovModulatedArrivals(4, 0.9, 0.0, 0.95, 0.8),
        )
        block_rows = MarkovModulatedArrivals.stack_rows(procs)
        step_rows = MarkovModulatedArrivals.stack_rows(procs)
        depth = 16
        out = np.empty((depth, 2, 4), dtype=np.int64)
        block_rows.evolve_block(depth, np.random.default_rng(3), out)
        g = np.random.default_rng(3)
        for d in range(depth):
            # Block mode draws all uniforms up front in interval order;
            # stepwise consumption differs, so compare distributions via
            # the same chunked draw instead: one-deep blocks.
            expected = np.empty((1, 2, 4), dtype=np.int64)
            step_rows.evolve_block(1, g, expected)
            np.testing.assert_array_equal(out[d], expected[0])

    def test_equality_and_codec(self):
        a = MarkovModulatedArrivals(3, 0.5, 0.1, 0.9, 0.8, "stationary")
        b = MarkovModulatedArrivals(3, 0.5, 0.1, 0.9, 0.8, "stationary")
        assert a == b and hash(a) == hash(b)
        assert a != MarkovModulatedArrivals(3, 0.5, 0.1, 0.9, 0.8, "on")
        assert MarkovModulatedArrivals.from_config(a.to_config()) == a


class TestParetoBurstArrivals:
    def test_mean_rates_renewal_formula(self, rng):
        process = ParetoBurstArrivals(3, start_prob=0.2, tail=1.5, dur_max=32)
        empirical = empirical_mean(process, rng, n=20000)
        np.testing.assert_allclose(
            empirical, process.mean_rates, atol=0.05
        )

    def test_support_and_peak(self, rng):
        process = ParetoBurstArrivals(2, start_prob=0.5, peak=3)
        assert process.max_per_link == 3
        for _ in range(300):
            sample = process.sample(rng)
            assert np.all((sample == 0) | (sample == 3))

    def test_heavy_tail_durations(self, rng):
        """Burst lengths must reach well beyond the mean (the point of the
        Pareto tail)."""
        process = ParetoBurstArrivals(
            1, start_prob=0.3, tail=1.2, dur_max=64
        )
        active = np.array(
            [process.sample(rng)[0] > 0 for _ in range(20000)]
        )
        # Longest observed run of consecutive active intervals.
        longest = run = 0
        for a in active:
            run = run + 1 if a else 0
            longest = max(longest, run)
        assert longest >= 20

    def test_reset_state(self):
        process = ParetoBurstArrivals(4, start_prob=0.9, dur_max=16)
        g = np.random.default_rng(0)
        for _ in range(5):
            process.sample(g)
        assert process._remaining.any()
        process.reset_state()
        assert not process._remaining.any()

    def test_capability_surface_and_equality(self):
        process = ParetoBurstArrivals(3, start_prob=0.2)
        assert process.has_state
        assert process.state_uses_rng
        assert process.supports_batch_state
        assert not process.supports_batch_sampling
        assert process == ParetoBurstArrivals(3, start_prob=0.2)
        assert process != ParetoBurstArrivals(3, start_prob=0.3)

    def test_batch_rows_match_scalar_stream(self):
        scalar = ParetoBurstArrivals(6, 0.2, 1.5, 32, 2)
        rows = ParetoBurstArrivals.stack_rows(
            (ParetoBurstArrivals(6, 0.2, 1.5, 32, 2),)
        )
        g_rows, g_scalar = np.random.default_rng(9), np.random.default_rng(9)
        for _ in range(100):
            np.testing.assert_array_equal(
                rows.evolve(g_rows)[0], scalar.sample(g_scalar)
            )

    def test_mixed_dur_max_rows_stay_in_support(self):
        procs = (
            ParetoBurstArrivals(3, 0.5, 1.5, 8),
            ParetoBurstArrivals(3, 0.5, 1.5, 64),
        )
        rows = ParetoBurstArrivals.stack_rows(procs)
        out = np.empty((32, 2, 3), dtype=np.int64)
        rows.evolve_block(32, np.random.default_rng(1), out)
        assert out.min() >= 0 and out.max() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoBurstArrivals(0, start_prob=0.2)
        with pytest.raises(ValueError):
            ParetoBurstArrivals(1, start_prob=0.0)
        with pytest.raises(ValueError):
            ParetoBurstArrivals(1, start_prob=0.2, tail=0.0)
        with pytest.raises(ValueError):
            ParetoBurstArrivals(1, start_prob=0.2, dur_max=0)
        with pytest.raises(ValueError):
            ParetoBurstArrivals(1, start_prob=0.2, peak=0)


class TestArrivalsFromSpec:
    def test_formats(self):
        assert arrivals_from_spec(
            "bernoulli:0.5", 3
        ) == BernoulliArrivals.symmetric(3, 0.5)
        assert arrivals_from_spec(
            "bursty:0.4:4", 2
        ) == BurstyVideoArrivals.symmetric(2, 0.4, burst_max=4)
        assert arrivals_from_spec(
            "constant:2", 2
        ) == ConstantArrivals.symmetric(2, 2)
        assert arrivals_from_spec(
            "mmpp:0.7:0.1:0.8:0.85:stationary", 3
        ) == MarkovModulatedArrivals(3, 0.7, 0.1, 0.8, 0.85, "stationary")
        assert arrivals_from_spec("mmpp:0.7", 3) == MarkovModulatedArrivals(
            3, 0.7
        )
        assert arrivals_from_spec(
            "pareto:0.2:1.5:32:2", 3
        ) == ParetoBurstArrivals(3, 0.2, 1.5, 32, 2)

    def test_bad_specs_raise_value_error(self):
        for bad in ("nope:1", "mmpp", "pareto", "bernoulli:x", "pareto:0"):
            with pytest.raises(ValueError):
                arrivals_from_spec(bad, 3)


class TestGenericSampleBatchValidation:
    def test_generic_fallback_goes_through_check_batch(self, rng):
        """A sample() override that breaks the A_max bound must be caught
        by the generic sample_batch fallback, not silently stacked."""

        class Broken(ArrivalProcess):
            @property
            def num_links(self):
                return 2

            @property
            def mean_rates(self):
                return np.full(2, 0.5)

            @property
            def max_per_link(self):
                return 1

            def sample(self, rng):
                return np.full(2, 7, dtype=np.int64)  # violates max_per_link

        with pytest.raises(AssertionError):
            Broken().sample_batch(rng, 4)

    def test_generic_fallback_stacks_valid_draws(self, rng):
        process = TruncatedPoissonArrivals(poisson_rates=(1.0, 2.0), cap=4)
        if process.supports_batch_sampling:
            batch = process.sample_batch(rng, 5)
            assert batch.shape == (5, 2)
            assert batch.max() <= 4
