"""Tests for arrival processes (Section II-B model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BurstyVideoArrivals,
    ConstantArrivals,
    CorrelatedBurstArrivals,
    TruncatedPoissonArrivals,
)
from repro.traffic.arrivals import MarkovModulatedArrivals


def empirical_mean(process, rng, n=4000):
    return np.mean([process.sample(rng) for _ in range(n)], axis=0)


class TestBernoulliArrivals:
    def test_mean_rates(self):
        process = BernoulliArrivals(rates=(0.2, 0.9))
        np.testing.assert_allclose(process.mean_rates, [0.2, 0.9])
        assert process.max_per_link == 1

    def test_empirical_mean(self, rng):
        process = BernoulliArrivals(rates=(0.3, 0.7))
        np.testing.assert_allclose(
            empirical_mean(process, rng), [0.3, 0.7], atol=0.03
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliArrivals(rates=(1.2,))
        with pytest.raises(ValueError):
            BernoulliArrivals(rates=())


class TestBurstyVideoArrivals:
    def test_paper_mean_formula(self):
        """lambda_n = 3.5 alpha_n with the default burst_max = 6."""
        process = BurstyVideoArrivals.symmetric(3, 0.55)
        np.testing.assert_allclose(process.mean_rates, [3.5 * 0.55] * 3)

    def test_support(self, rng):
        process = BurstyVideoArrivals.symmetric(2, 0.8)
        for _ in range(500):
            sample = process.sample(rng)
            assert np.all((sample >= 0) & (sample <= 6))

    def test_burst_values_uniform(self, rng):
        process = BurstyVideoArrivals.symmetric(1, 1.0)
        values = [int(process.sample(rng)[0]) for _ in range(6000)]
        counts = np.bincount(values, minlength=7)
        assert counts[0] == 0  # alpha = 1: always a burst
        assert counts[1:].min() > 800  # each of 1..6 ~ 1000

    def test_empirical_mean(self, rng):
        process = BurstyVideoArrivals.symmetric(4, 0.5)
        np.testing.assert_allclose(
            empirical_mean(process, rng), [1.75] * 4, atol=0.12
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyVideoArrivals(alphas=(1.5,))
        with pytest.raises(ValueError):
            BurstyVideoArrivals(alphas=(0.5,), burst_max=0)


class TestConstantArrivals:
    def test_deterministic(self, rng):
        process = ConstantArrivals(counts=(2, 0, 1))
        for _ in range(5):
            np.testing.assert_array_equal(process.sample(rng), [2, 0, 1])

    def test_mean_and_max(self):
        process = ConstantArrivals(counts=(2, 0, 1))
        np.testing.assert_allclose(process.mean_rates, [2, 0, 1])
        assert process.max_per_link == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantArrivals(counts=(-1,))


class TestTruncatedPoisson:
    def test_truncation_respected(self, rng):
        process = TruncatedPoissonArrivals(poisson_rates=(10.0,), cap=4)
        for _ in range(300):
            assert process.sample(rng)[0] <= 4

    def test_mean_accounts_for_truncation(self, rng):
        process = TruncatedPoissonArrivals(poisson_rates=(3.0,), cap=4)
        theory = process.mean_rates[0]
        assert theory < 3.0  # truncation pulls the mean down
        empirical = empirical_mean(process, rng, n=8000)[0]
        assert empirical == pytest.approx(theory, abs=0.06)

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedPoissonArrivals(poisson_rates=(-1.0,))
        with pytest.raises(ValueError):
            TruncatedPoissonArrivals(poisson_rates=(1.0,), cap=0)


class TestCorrelatedBurstArrivals:
    def test_all_or_nothing(self, rng):
        process = CorrelatedBurstArrivals(num_links_=4, event_prob=0.5)
        for _ in range(300):
            sample = process.sample(rng)
            assert np.all(sample == 0) or np.all(sample >= 1)

    def test_mean(self, rng):
        process = CorrelatedBurstArrivals(
            num_links_=3, event_prob=0.4, burst_max=3
        )
        np.testing.assert_allclose(process.mean_rates, [0.8] * 3)
        np.testing.assert_allclose(
            empirical_mean(process, rng, n=8000), [0.8] * 3, atol=0.06
        )

    def test_cross_link_correlation_is_positive(self, rng):
        process = CorrelatedBurstArrivals(num_links_=2, event_prob=0.5)
        samples = np.array([process.sample(rng) for _ in range(4000)])
        corr = np.corrcoef(samples[:, 0], samples[:, 1])[0, 1]
        assert corr > 0.5


class TestMarkovModulated:
    def test_stationary_mean(self):
        process = MarkovModulatedArrivals(
            2, on_rate=0.8, off_rate=0.0, p_stay_on=0.9, p_stay_off=0.9
        )
        np.testing.assert_allclose(process.mean_rates, [0.4] * 2)

    def test_temporal_correlation(self, rng):
        """The process intentionally violates temporal independence."""
        process = MarkovModulatedArrivals(
            1, on_rate=1.0, off_rate=0.0, p_stay_on=0.95, p_stay_off=0.95
        )
        samples = np.array([process.sample(rng)[0] for _ in range(8000)], float)
        corr = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        assert corr > 0.5

    def test_support(self, rng):
        process = MarkovModulatedArrivals(3, on_rate=0.5)
        for _ in range(100):
            assert np.all(process.sample(rng) <= 1)
