#!/usr/bin/env python
"""CI gate: the incremental DP priority-state path must beat dense at scale.

Reads the report written by ``benchmarks/bench_large_n.py`` and fails
loudly when the incremental path stopped winning where it is supposed to
win.  Small N is deliberately NOT gated: at N=20 the serve set is the
whole network and the incremental path's extra selection pass is pure
overhead — the committed artifact records that honestly.  The contract
is about scale:

* every entry with ``num_links >= 500`` that carries a dense measurement
  must show ``dp_stage_speedup > MIN_RATIO`` (the combined
  ``kernel.dp.*`` stage sum — the incremental path reports its state
  upkeep under ``kernel.dp.incremental``, so stage-by-stage label
  comparison would be meaningless; see ``repro.sim.perf.KNOWN_STAGES``);
* at least one gated entry must exist (an artifact with the large rows
  missing is a broken benchmark, not a pass).

Usage::

    python tools/check_incremental_wins.py [path/to/BENCH_LARGE_N.json]
"""

from __future__ import annotations

import json
import os
import sys

#: Entries at or above this link count are gated.
GATE_N = 500
#: Required combined kernel.dp.* stage ratio (dense / incremental) for
#: gated entries.  The committed full-scale artifact shows ~3.3x at
#: N=500 and ~7.5x at N=2000; 1.2 is a deliberately loose floor so CI
#: smoke scales and noisy boxes don't flake, while still catching a
#: regression that makes incremental pointless at scale.
MIN_RATIO = 1.2


def main(argv: list) -> int:
    path = argv[1] if len(argv) > 1 else os.environ.get(
        "REPRO_BENCH_LARGE_N_JSON", "BENCH_LARGE_N.json"
    )
    try:
        report = json.loads(open(path).read())
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read benchmark report {path!r}: {exc}")
        return 1

    entries = report.get("entries", [])
    gated = [
        e
        for e in entries
        if e.get("num_links", 0) >= GATE_N
        and e.get("dense_seconds") is not None
    ]
    if not gated:
        print(
            f"FAIL: {path} has no dense-measured entries with "
            f"num_links >= {GATE_N}; the benchmark did not run its "
            "large-N rows"
        )
        return 1

    failures = []
    for entry in gated:
        n = entry["num_links"]
        ratio = entry.get("dp_stage_speedup")
        if ratio is None:
            failures.append(f"N={n}: no dp_stage_speedup recorded")
            continue
        verdict = "OK  " if ratio > MIN_RATIO else "FAIL"
        print(
            f"{verdict} N={n}: incremental dp stages "
            f"{entry.get('incremental_dp_stage_seconds')}s vs dense "
            f"{entry.get('dense_dp_stage_seconds')}s -> x{ratio}"
        )
        if ratio <= MIN_RATIO:
            failures.append(
                f"N={n}: dp_stage_speedup {ratio} <= {MIN_RATIO}"
            )

    if failures:
        print("FAIL: incremental DP state stopped winning at scale:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(
        f"OK: incremental beats dense (> {MIN_RATIO}x combined "
        f"kernel.dp.* stages) on all {len(gated)} gated entries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
