#!/usr/bin/env python
"""CI gate: the compiled jit backend must actually beat numpy.

Reads the report written by ``benchmarks/bench_kernel_hotloop.py`` and
fails loudly when the jit leg was silently degraded or did not win:

* ``numba_available`` must be true and ``jit_skipped`` false — a numpy
  fallback masquerading as a jit measurement is exactly the failure mode
  this gate exists to catch;
* the jit leg must beat the numpy workspace leg on at least one kernel
  stage (``jit_stage_seconds`` vs ``numpy_stage_seconds`` on the two
  compiled hot loops), or failing a stage decomposition, end to end.

Only meaningful on the numba-installed CI leg; the numba-absent leg
never runs this script.

Usage::

    python tools/check_jit_wins.py [path/to/BENCH_kernels.json]
"""

from __future__ import annotations

import json
import os
import sys

#: The stages whose inner loops backend="jit" actually compiles; every
#: other stage is shared verbatim between the numpy and jit legs.
COMPILED_STAGES = ("kernel.dp.timeline", "kernel.serve.interval")


def main(argv: list) -> int:
    path = argv[1] if len(argv) > 1 else os.environ.get(
        "REPRO_BENCH_KERNELS_JSON", "BENCH_kernels.json"
    )
    try:
        report = json.loads(open(path).read())
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read benchmark report {path!r}: {exc}")
        return 1

    if not report.get("numba_available"):
        print(f"FAIL: {path} has numba_available=false — the jit leg ran "
              "without a compiler; install numba on this CI leg")
        return 1
    if report.get("jit_skipped"):
        print(f"FAIL: {path} has jit_skipped=true — the benchmark degraded "
              "to numpy; this leg must measure compiled kernels")
        return 1

    numpy_stages = report.get("numpy_stage_seconds", {})
    jit_stages = report.get("jit_stage_seconds", {})
    wins = []
    for stage in COMPILED_STAGES:
        n, j = numpy_stages.get(stage), jit_stages.get(stage)
        if n is None or j is None:
            continue
        verdict = "beats" if j < n else "loses to"
        print(f"{stage}: jit {j:.4f}s {verdict} numpy {n:.4f}s")
        if j < n:
            wins.append(stage)

    if wins:
        print(f"OK: jit beats numpy on {len(wins)} stage(s): "
              + ", ".join(wins))
        return 0

    # Stage decomposition missing (older report): fall back to the
    # end-to-end comparison.
    best = report.get("best_seconds", {})
    if not jit_stages and "jit" in best and "numpy" in best:
        if best["jit"] < best["numpy"]:
            print(f"OK: jit {best['jit']:.3f}s beats numpy "
                  f"{best['numpy']:.3f}s end to end (no stage breakdown)")
            return 0
        print(f"FAIL: jit {best['jit']:.3f}s did not beat numpy "
              f"{best['numpy']:.3f}s end to end")
        return 1

    print("FAIL: jit did not beat numpy on any compiled kernel stage")
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
