#!/usr/bin/env python
"""CI fault-injection drill for the sweep orchestration layer.

Two phases, both scripted through the deterministic ``REPRO_FAULT_INJECT``
hooks (no randomness, no timing races):

1. **Kill-and-resume**: a parallel sweep is killed mid-run (a worker
   ``os._exit``s while simulating one cell), leaving the first half of
   the grid checkpointed in the on-disk sweep cache.  The drill then
   clears the fault, resumes from the cache, and asserts the resumed
   result is **bit-identical** to an uninterrupted sequential run.
2. **Best-effort reporting**: a permanently failing cell under
   ``mode="best_effort"`` must yield a NaN point plus a structured
   ``SweepFailureReport`` naming exactly that (value, policy) cell.

Writes ``FAULT_SMOKE.json`` (drill summary + the failure report payload)
for CI artifact upload; exits non-zero on any violated assertion.

Usage::

    PYTHONPATH=src python tools/fault_smoke.py [--intervals N]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import LDFPolicy  # noqa: E402
from repro.experiments.cache import SweepCache  # noqa: E402
from repro.experiments.configs import video_symmetric_spec  # noqa: E402
from repro.experiments.faults import (  # noqa: E402
    ENV_FAULT_INJECT,
    FaultPolicy,
    SweepCellError,
)
from repro.experiments.parallel import run_sweep_parallel  # noqa: E402
from repro.experiments.runner import run_sweep  # noqa: E402

VALUES = [0.4, 0.5, 0.6, 0.7]
KILL_AT = 0.6  # the third cell: two cells are checkpointed before the kill


def smoke_builder(alpha: float):
    return video_symmetric_spec(alpha, num_links=6)


def sweep_kwargs(num_intervals: int) -> dict:
    return dict(
        parameter_name="alpha",
        values=VALUES,
        spec_builder=smoke_builder,
        policies={"LDF": LDFPolicy},
        num_intervals=num_intervals,
        seeds=(0, 1),
    )


def drill_kill_and_resume(num_intervals: int, report: dict) -> None:
    kwargs = sweep_kwargs(num_intervals)
    print("[fault-smoke] reference run (sequential, uncached)...")
    reference = run_sweep(**kwargs)

    with tempfile.TemporaryDirectory(prefix="fault_smoke_") as tmp:
        cache = SweepCache(tmp)
        print(f"[fault-smoke] killing the worker at LDF alpha={KILL_AT}...")
        os.environ[ENV_FAULT_INJECT] = f"kill:LDF:{KILL_AT}"
        try:
            # max_workers=1 serializes the cells, so the kill lands after
            # the first two cells were checkpointed — a sweep killed at 50%.
            run_sweep_parallel(
                max_workers=1,
                cache=cache,
                faults=FaultPolicy(retries=0, backoff_base=0.0),
                **kwargs,
            )
        except SweepCellError as exc:
            print(f"[fault-smoke] sweep died as scripted: {exc}")
            assert exc.policy == "LDF", exc
        else:
            raise AssertionError("the injected kill did not abort the sweep")
        finally:
            del os.environ[ENV_FAULT_INJECT]
        checkpointed = cache.stores
        assert checkpointed == 2, (
            f"expected exactly the 2 pre-kill cells checkpointed, "
            f"got {checkpointed}"
        )

        print("[fault-smoke] resuming from the checkpointed cells...")
        resumed = run_sweep_parallel(max_workers=1, cache=cache, **kwargs)
        assert cache.hits == 2, (
            f"expected the 2 checkpointed cells served warm, "
            f"got {cache.hits} hits"
        )
        mismatches = [
            (ref.parameter, ref.policy)
            for ref, res in zip(reference.points, resumed.points)
            if ref != res
        ]
        assert not mismatches, (
            f"resumed sweep is not bit-identical at cells {mismatches}"
        )
        print("[fault-smoke] resumed result is bit-identical. OK")
        report["kill_and_resume"] = {
            "values": VALUES,
            "killed_at": KILL_AT,
            "checkpointed_cells": checkpointed,
            "warm_hits_on_resume": cache.hits,
            "bit_identical": True,
        }


def drill_best_effort_report(num_intervals: int, report: dict) -> None:
    kwargs = sweep_kwargs(num_intervals)
    print("[fault-smoke] best-effort run with a permanently failing cell...")
    os.environ[ENV_FAULT_INJECT] = f"raise:LDF:{KILL_AT}"
    try:
        result = run_sweep_parallel(
            max_workers=2,
            faults=FaultPolicy(
                retries=1, backoff_base=0.0, mode="best_effort"
            ),
            **kwargs,
        )
    finally:
        del os.environ[ENV_FAULT_INJECT]
    series = result.series("LDF")
    nan_values = [v for v, x in zip(VALUES, series) if math.isnan(x)]
    assert nan_values == [KILL_AT], (
        f"expected only the {KILL_AT} cell NaN-filled, got {nan_values}"
    )
    assert result.failures is not None and result.failures.cells == [
        (KILL_AT, "LDF")
    ], f"failure report does not name the cell: {result.failures}"
    print("[fault-smoke] failure report names the lost cell. OK")
    print(result.failures.summary())
    report["best_effort"] = result.failures.to_payload()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--intervals",
        type=int,
        default=120,
        help="horizon per cell (default 120: a few seconds total)",
    )
    parser.add_argument(
        "--out",
        default="FAULT_SMOKE.json",
        help="where to write the drill summary (default FAULT_SMOKE.json)",
    )
    args = parser.parse_args(argv)
    report: dict = {"intervals": args.intervals}
    drill_kill_and_resume(args.intervals, report)
    drill_best_effort_report(args.intervals, report)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(f"[fault-smoke] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
