#!/usr/bin/env python
"""CI smoke drill for the multi-cell topology layer.

Runs a small multi-cell grid (12 links, 3 cells, boundary links
promoted) through the fused sweep engine and the on-disk sweep cache:

1. **Cold + warm**: a topology sweep is run cold into an empty cache,
   then re-run warm; every cell must come back as a cache hit and the
   warm result must be **bit-identical** to the cold one.
2. **Checkpoint resume**: a partial sweep (the first parameter value
   only) populates the cache, then the full sweep resumes on top; the
   checkpointed cells are served warm and the result is bit-identical
   to an uncached reference run.
3. **Degrade semantics**: a non-`supports_topology` family (FCSMA) in
   the same sweep must degrade to single-domain with exactly one
   ``UserWarning`` while still producing finite points.

Writes ``TOPOLOGY_SMOKE.json`` for CI artifact upload; exits non-zero
on any violated assertion.

Usage::

    PYTHONPATH=src python tools/topology_smoke.py [--intervals N]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import warnings

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.cache import SweepCache  # noqa: E402
from repro.experiments.configs import video_symmetric_spec  # noqa: E402
from repro.experiments.runner import run_sweep  # noqa: E402
from repro.topology import grid_cells  # noqa: E402

VALUES = [0.45, 0.55, 0.65]
NUM_LINKS = 12
NUM_CELLS = 3
CROSS_FRACTION = 0.5


def smoke_builder(alpha: float):
    return video_symmetric_spec(alpha, num_links=NUM_LINKS)


def smoke_topology(spec):
    return grid_cells(spec.num_links, NUM_CELLS, CROSS_FRACTION)


def sweep_kwargs(num_intervals: int, policies) -> dict:
    return dict(
        parameter_name="alpha",
        values=VALUES,
        spec_builder=smoke_builder,
        policies=policies,
        num_intervals=num_intervals,
        seeds=(0, 1),
        engine="fused",
        topology=smoke_topology,
    )


def _points(result):
    return [
        (p.parameter, p.policy, p.total_deficiency, p.mean_overhead_us)
        for p in result.points
    ]


def drill_cold_warm(num_intervals: int, report: dict) -> None:
    kwargs = sweep_kwargs(num_intervals, ["DB-DP"])
    with tempfile.TemporaryDirectory(prefix="topology_smoke_") as tmp:
        cache = SweepCache(tmp)
        print("[topology-smoke] cold multi-cell sweep...")
        cold = run_sweep(cache=cache, **kwargs)
        stored = cache.stores
        assert stored == len(VALUES), (
            f"expected {len(VALUES)} cells checkpointed cold, got {stored}"
        )
        print("[topology-smoke] warm re-run from the cache...")
        warm = run_sweep(cache=cache, **kwargs)
        assert cache.hits == len(VALUES), (
            f"expected all {len(VALUES)} cells served warm, "
            f"got {cache.hits} hits"
        )
        assert _points(cold) == _points(warm), (
            "warm topology sweep is not bit-identical to the cold run"
        )
        print("[topology-smoke] warm result is bit-identical. OK")
        report["cold_warm"] = {
            "values": VALUES,
            "checkpointed_cells": stored,
            "warm_hits": cache.hits,
            "bit_identical": True,
        }


def drill_checkpoint_resume(num_intervals: int, report: dict) -> None:
    kwargs = sweep_kwargs(num_intervals, ["DB-DP"])
    print("[topology-smoke] reference run (uncached)...")
    reference = run_sweep(**kwargs)
    with tempfile.TemporaryDirectory(prefix="topology_smoke_") as tmp:
        cache = SweepCache(tmp)
        partial = dict(kwargs, values=VALUES[:1])
        print("[topology-smoke] partial sweep (first value only)...")
        run_sweep(cache=cache, **partial)
        checkpointed = cache.stores
        assert checkpointed == 1, (
            f"expected 1 checkpointed cell, got {checkpointed}"
        )
        print("[topology-smoke] resuming the full sweep on the cache...")
        resumed = run_sweep(cache=cache, **kwargs)
        assert cache.hits == 1, (
            f"expected the checkpointed cell served warm, got {cache.hits}"
        )
        assert _points(reference) == _points(resumed), (
            "resumed topology sweep is not bit-identical to the reference"
        )
        print("[topology-smoke] resumed result is bit-identical. OK")
        report["checkpoint_resume"] = {
            "checkpointed_cells": checkpointed,
            "warm_hits_on_resume": cache.hits,
            "bit_identical": True,
        }


def drill_degrade_warning(num_intervals: int, report: dict) -> None:
    kwargs = sweep_kwargs(num_intervals, ["DB-DP", "FCSMA"])
    print("[topology-smoke] mixed sweep with a non-capable family...")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = run_sweep(**kwargs)
    topo_warnings = [
        w for w in caught if "supports_topology" in str(w.message)
    ]
    assert len(topo_warnings) == 1, (
        f"expected exactly one degrade warning, got {len(topo_warnings)}"
    )
    assert "FCSMA" in str(topo_warnings[0].message)
    fcsma = [p for p in result.points if p.policy == "FCSMA"]
    assert fcsma and all(
        math.isfinite(p.total_deficiency) for p in fcsma
    ), "degraded FCSMA cells did not produce finite points"
    print("[topology-smoke] FCSMA degraded with one warning. OK")
    report["degrade"] = {
        "warnings": len(topo_warnings),
        "degraded_family": "FCSMA",
        "finite_points": len(fcsma),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--intervals",
        type=int,
        default=120,
        help="horizon per cell (default 120: a few seconds total)",
    )
    parser.add_argument(
        "--out",
        default="TOPOLOGY_SMOKE.json",
        help="where to write the drill summary",
    )
    args = parser.parse_args(argv)
    report: dict = {
        "intervals": args.intervals,
        "topology": f"grid_cells({NUM_LINKS}, {NUM_CELLS}, {CROSS_FRACTION})",
    }
    drill_cold_warm(args.intervals, report)
    drill_checkpoint_resume(args.intervals, report)
    drill_degrade_warning(args.intervals, report)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(f"[topology-smoke] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
